"""Sweep executors: serial for determinism, process pool for speed.

Both executors run :func:`repro.sweeps.worker.execute_point` over the
same plain-data payloads and return outcomes re-sorted into the
spec's canonical point order, so::

    SerialExecutor().run(base, points)
    == ProcessExecutor(jobs=4).run(base, points)

holds exactly (identical floats, identical per-node vectors) — the
invariant ``tests/sweeps/test_determinism.py`` pins for every backend
in the registry. :class:`ProcessExecutor` always uses the ``spawn``
start method: workers import :mod:`repro` fresh instead of inheriting
forked state, which keeps results independent of whatever the parent
process cached and behaves identically on Linux, macOS, and Windows.

Spawned workers share built routing tables instead of rebuilding
them: before fanning out, the parent resolves each unique topology's
:class:`~repro.backends.fast.NextHopTable` once through the global
:class:`~repro.perf.table_cache.TableCache`, publishes it to shared
memory via the :class:`~repro.perf.shared.SharedTableRegistry`
(refcounted; unlinked when the run ends), and ships the handles with
every work item — the fix for PR 2's finding that ``--jobs 4`` lost
to serial because each worker rebuilt every table. Scenario points
get the same treatment one level up: the parent replays each unique
schedule once (:func:`~repro.scenarios.plan.precompute_epoch_tables`)
and publishes the per-epoch storer tables and sparse coded-matrix
patches alongside the dense tables, so replicas install shared views
instead of re-deriving the epoch chain per worker. ``share_tables=
False`` restores the rebuild-per-worker behavior for comparison.

Requesting more workers than the machine has CPUs is allowed but
warned about (PR 2 also measured oversubscribed sweeps running
*slower* than serial: the points are CPU-bound, so extra workers only
add contention); ``cap_jobs=True`` clamps to ``os.cpu_count()``
instead.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import get_context
from typing import Callable, Sequence

from ..backends.base import get_backend_class
from ..backends.config import FastSimulationConfig
from ..errors import ConfigurationError
from ..kademlia.overlay import OverlayConfig
from .spec import SweepPoint
from .worker import PointOutcome, execute_point, point_payload

__all__ = ["SweepExecutor", "SerialExecutor", "ProcessExecutor",
           "make_executor", "resolve_jobs", "table_topologies"]

#: Callback invoked as each point completes (store persistence hook).
OnResult = Callable[[PointOutcome], None]


def resolve_jobs(jobs: int, *, cap_jobs: bool = False) -> int:
    """Validate a worker count against the machine's CPUs.

    Warns when *jobs* exceeds ``os.cpu_count()`` — PR 2's sweep
    measurements showed oversubscription *inverting* the parallel
    speedup (4 workers on 1 core: 169 s vs 82 s serial) — and clamps
    to the CPU count when ``cap_jobs`` is set.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    available = os.cpu_count() or 1
    if jobs > available:
        if cap_jobs:
            warnings.warn(
                f"--jobs {jobs} exceeds the {available} available CPU(s); "
                f"capping to {available}. Sweep points are CPU-bound, so "
                f"oversubscription only adds contention (PR 2 measured it "
                f"running slower than serial).",
                RuntimeWarning,
                stacklevel=3,
            )
            return available
        warnings.warn(
            f"--jobs {jobs} exceeds the {available} available CPU(s); "
            f"expect the parallel sweep to run no faster (and possibly "
            f"slower) than --jobs {available}. Pass cap_jobs/--cap-jobs "
            f"to clamp automatically.",
            RuntimeWarning,
            stacklevel=3,
        )
    return jobs


def table_topologies(base: FastSimulationConfig,
                     points: Sequence[SweepPoint]) -> list[OverlayConfig]:
    """Unique overlay configs whose points need a next-hop table.

    Only backends that declare ``uses_next_hop_table`` count — the
    reference network and the standalone tit-for-tat swarm never build
    one, so publishing tables for them would be pure overhead.
    """
    from ..backends.fast import overlay_key

    unique: dict[tuple, OverlayConfig] = {}
    for point in points:
        if not get_backend_class(point.backend).uses_next_hop_table:
            continue
        config = point.config(base).overlay_config()
        unique.setdefault(overlay_key(config), config)
    return list(unique.values())


class SweepExecutor:
    """Runs sweep points; subclasses choose the execution strategy."""

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        """Execute *points* against *base*; canonical-order outcomes."""
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """In-process, one point at a time — the determinism reference.

    The process-global table cache already deduplicates builds within
    one process, so the serial path needs no shared memory: a K-seed x
    M-parameter sweep over one topology builds its table once here
    too.
    """

    def __init__(self, *, epoch_cache_tables: int | None = None) -> None:
        self.epoch_cache_tables = epoch_cache_tables

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        base_payload = dataclasses.asdict(base)
        outcomes = []
        for point in points:
            outcome = execute_point(
                base_payload, point_payload(point),
                epoch_cache_tables=self.epoch_cache_tables,
            )
            if on_result is not None:
                on_result(outcome)
            outcomes.append(outcome)
        outcomes.sort(key=lambda o: o.index)
        return outcomes


class ProcessExecutor(SweepExecutor):
    """Fan points out over a spawn-based process pool.

    Results are collected as they complete (so the store can persist
    incrementally) and re-sorted into canonical point order before
    returning; scheduling order never leaks into the output.
    """

    def __init__(self, jobs: int, *, share_tables: bool = True,
                 cap_jobs: bool = False,
                 epoch_cache_tables: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs, cap_jobs=cap_jobs)
        self.share_tables = share_tables
        self.epoch_cache_tables = epoch_cache_tables

    def _publish_tables(self, base: FastSimulationConfig,
                        points: Sequence[SweepPoint]
                        ) -> tuple[dict[str, dict], list[str]]:
        """Build each unique topology once and publish it to workers.

        Returns (handle payloads keyed by fingerprint, acquired
        fingerprints to release). Alongside the dense tables, every
        unique ``(topology, scenario schedule)`` among the points gets
        its epoch artifacts — per-epoch storer tables and sparse coded
        patches — precomputed here and published too, so replicas
        replaying one schedule install them instead of re-deriving the
        chain in every worker (the patch scan happens once per
        machine). Falls back to unshared execution — workers rebuild,
        exactly the pre-cache behavior — when shared memory is
        unavailable on this platform.
        """
        from ..backends.fast import cached_overlay
        from ..perf.shared import shared_table_registry
        from ..perf.table_cache import global_table_cache

        payloads: dict[str, dict] = {}
        acquired: list[str] = []
        registry = shared_table_registry()
        try:
            for overlay_config in table_topologies(base, points):
                table = global_table_cache().get(
                    cached_overlay(overlay_config)
                )
                handle = registry.acquire(table)
                acquired.append(handle.fingerprint)
                payloads[handle.fingerprint] = handle.to_payload()
            self._publish_epoch_tables(
                base, points, registry, payloads, acquired
            )
        except (ImportError, OSError) as error:
            for fingerprint in acquired:
                registry.release(fingerprint)
            warnings.warn(
                f"shared-memory table publication unavailable "
                f"({error}); sweep workers will rebuild next-hop tables",
                RuntimeWarning,
            )
            return {}, []
        return payloads, acquired

    def _publish_epoch_tables(self, base: FastSimulationConfig,
                              points: Sequence[SweepPoint],
                              registry, payloads: dict[str, dict],
                              acquired: list[str]) -> None:
        """Precompute and publish epoch artifacts per unique schedule.

        A schedule is identified by its topology fingerprint plus the
        composed scenario spec and epoch count — everything the
        chained fingerprints derive from — so seed replicas of one
        dynamics point share a single publication.
        """
        from ..backends.fast import cached_overlay
        from ..perf.table_cache import global_table_cache
        from ..scenarios.plan import precompute_epoch_tables

        seen: set[str] = set()
        for point in points:
            if not get_backend_class(point.backend).uses_next_hop_table:
                continue
            config = point.config(base)
            if not config.has_scenarios:
                continue
            scenario = config.scenario_stack()
            if scenario is None:
                continue
            ctx = config.scenario_context()
            table = global_table_cache().get(
                cached_overlay(config.overlay_config())
            )
            fingerprint = table.overlay.fingerprint()
            key = (f"epochs:{fingerprint}:"
                   f"{scenario.spec()}:{ctx.n_epochs}")
            if key in seen:
                continue
            seen.add(key)
            storer_tables, patches = precompute_epoch_tables(
                scenario, ctx,
                table_fingerprint=fingerprint,
                base_storers=table.storer,
                addresses=table.overlay.address_array(),
                coded=global_table_cache().writable_coded(table),
            )
            if not storer_tables and not patches:
                continue
            handle = registry.acquire_epochs(
                key, storer_tables, patches, table.n_nodes
            )
            acquired.append(key)
            payloads[key] = handle.to_payload()

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None) -> list[PointOutcome]:
        if not points:
            return []
        base_payload = dataclasses.asdict(base)
        workers = min(self.jobs, len(points))
        handles: dict[str, dict] = {}
        acquired: list[str] = []
        if self.share_tables:
            handles, acquired = self._publish_tables(base, points)
        outcomes: list[PointOutcome] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=get_context("spawn")
            ) as pool:
                pending = {
                    pool.submit(execute_point, base_payload,
                                point_payload(point), handles or None,
                                self.epoch_cache_tables)
                    for point in points
                }
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        outcome = future.result()
                        if on_result is not None:
                            on_result(outcome)
                        outcomes.append(outcome)
        finally:
            if acquired:
                from ..perf.shared import shared_table_registry

                registry = shared_table_registry()
                for fingerprint in acquired:
                    registry.release(fingerprint)
        outcomes.sort(key=lambda o: o.index)
        return outcomes


def make_executor(jobs: int, *, share_tables: bool = True,
                  cap_jobs: bool = False,
                  epoch_cache_tables: int | None = None) -> SweepExecutor:
    """Serial for ``jobs == 1``, a spawn process pool otherwise."""
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor(epoch_cache_tables=epoch_cache_tables)
    return ProcessExecutor(jobs, share_tables=share_tables,
                           cap_jobs=cap_jobs,
                           epoch_cache_tables=epoch_cache_tables)
