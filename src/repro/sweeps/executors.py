"""Sweep executors: serial for determinism, process pool for speed.

Both executors run :func:`repro.sweeps.worker.execute_point` over the
same plain-data payloads and return outcomes re-sorted into the
spec's canonical point order, so::

    SerialExecutor().run(base, points)
    == ProcessExecutor(jobs=4).run(base, points)

holds exactly (identical floats, identical per-node vectors) — the
invariant ``tests/sweeps/test_determinism.py`` pins for every backend
in the registry. :class:`ProcessExecutor` always uses the ``spawn``
start method: workers import :mod:`repro` fresh instead of inheriting
forked state, which keeps results independent of whatever the parent
process cached and behaves identically on Linux, macOS, and Windows.

Execution is **fault-tolerant** (see :mod:`repro.sweeps.resilience`):
a point that raises is retried under a deterministic
:class:`~repro.sweeps.resilience.RetryPolicy` and quarantined (not
fatal) when it exhausts the budget; a dead worker process
(``BrokenProcessPool`` — segfault, OOM-kill, ``os._exit``) triggers a
bounded pool rebuild with every lost in-flight point resubmitted; a
wall-clock ``point_timeout`` watchdog recycles the pool out from
under a hung point and counts the hang as a retryable failure. A
point that fails and then succeeds within the budget leaves no trace
in its outcome — recovered sweeps stay byte-identical to fault-free
ones, the property :mod:`repro.sweeps.chaos` fault plans pin in CI.

Spawned workers share built routing tables instead of rebuilding
them: before fanning out, the parent resolves each unique topology's
:class:`~repro.backends.fast.NextHopTable` once through the global
:class:`~repro.perf.table_cache.TableCache`, publishes it to shared
memory via the :class:`~repro.perf.shared.SharedTableRegistry`
(refcounted; unlinked when the run ends), and ships the handles with
every work item — the fix for PR 2's finding that ``--jobs 4`` lost
to serial because each worker rebuilt every table. Scenario points
get the same treatment one level up: the parent replays each unique
schedule once (:func:`~repro.scenarios.plan.precompute_epoch_tables`)
and publishes the per-epoch storer tables and sparse coded-matrix
patches alongside the dense tables, so replicas install shared views
instead of re-deriving the epoch chain per worker. ``share_tables=
False`` restores the rebuild-per-worker behavior for comparison.

Requesting more workers than the machine has CPUs is allowed but
warned about (PR 2 also measured oversubscribed sweeps running
*slower* than serial: the points are CPU-bound, so extra workers only
add contention); ``cap_jobs=True`` clamps to ``os.cpu_count()``
instead.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..backends.base import get_backend_class
from ..backends.config import FastSimulationConfig
from ..errors import ConfigurationError, SweepExecutionError
from ..kademlia.overlay import OverlayConfig
from .resilience import FailureTracker, PointFailure, RetryPolicy
from .spec import SweepPoint, SweepSpec
from .worker import PointOutcome, execute_point, point_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .distributed import DistributedExecutor  # noqa: F401

__all__ = ["SweepExecutor", "SerialExecutor", "ProcessExecutor",
           "WorkerCrash", "PointTimeout",
           "make_executor", "resolve_jobs", "table_topologies"]

#: Callback invoked as each point completes (store persistence hook).
OnResult = Callable[[PointOutcome], None]

#: Callback invoked when a point exhausts its retry budget and is
#: quarantined (store failure-section hook).
OnFailure = Callable[[PointFailure], None]


class WorkerCrash(RuntimeError):
    """A worker process died while the point was in flight.

    The pool cannot attribute the death to one future, so every lost
    in-flight point is charged one attempt with this error; the fixed
    message keeps quarantine records deterministic.
    """


class PointTimeout(RuntimeError):
    """A point exceeded the wall-clock ``point_timeout`` watchdog."""


def resolve_jobs(jobs: int, *, cap_jobs: bool = False) -> int:
    """Validate a worker count against the machine's CPUs.

    Warns when *jobs* exceeds ``os.cpu_count()`` — PR 2's sweep
    measurements showed oversubscription *inverting* the parallel
    speedup (4 workers on 1 core: 169 s vs 82 s serial) — and clamps
    to the CPU count when ``cap_jobs`` is set.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    available = os.cpu_count() or 1
    if jobs > available:
        if cap_jobs:
            warnings.warn(
                f"--jobs {jobs} exceeds the {available} available CPU(s); "
                f"capping to {available}. Sweep points are CPU-bound, so "
                f"oversubscription only adds contention (PR 2 measured it "
                f"running slower than serial).",
                RuntimeWarning,
                stacklevel=3,
            )
            return available
        warnings.warn(
            f"--jobs {jobs} exceeds the {available} available CPU(s); "
            f"expect the parallel sweep to run no faster (and possibly "
            f"slower) than --jobs {available}. Pass cap_jobs/--cap-jobs "
            f"to clamp automatically.",
            RuntimeWarning,
            stacklevel=3,
        )
    return jobs


def table_topologies(base: FastSimulationConfig,
                     points: Sequence[SweepPoint]) -> list[OverlayConfig]:
    """Unique overlay configs whose points need a next-hop table.

    Only backends that declare ``uses_next_hop_table`` count — the
    reference network and the standalone tit-for-tat swarm never build
    one, so publishing tables for them would be pure overhead.
    """
    from ..backends.fast import overlay_key

    unique: dict[tuple, OverlayConfig] = {}
    for point in points:
        if not get_backend_class(point.backend).uses_next_hop_table:
            continue
        config = point.config(base).overlay_config()
        unique.setdefault(overlay_key(config), config)
    return list(unique.values())


class SweepExecutor:
    """Runs sweep points; subclasses choose the execution strategy."""

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None,
            on_failure: OnFailure | None = None,
            attempts: Mapping[str, int] | None = None
            ) -> list[PointOutcome]:
        """Execute *points* against *base*; canonical-order outcomes.

        Successful outcomes are returned (and streamed to
        *on_result*); points that exhaust the retry budget are
        reported to *on_failure* and omitted from the return value —
        unless ``keep_going=False``, where the first exhausted point
        raises :class:`~repro.errors.SweepExecutionError`.

        *attempts* seeds prior failed-attempt counts per ``point_id``
        (default: none). The distributed work queue uses it to make a
        host's local run count attempts from the global number its
        lease carries, so quarantine records stay identical to a
        single-machine run's.
        """
        raise NotImplementedError

    def _point_failed(self, point: SweepPoint, kind: str,
                      error: BaseException, tracker: FailureTracker,
                      on_failure: OnFailure | None) -> bool:
        """Charge one failed attempt; ``True`` if the point may retry.

        On exhaustion the terminal failure is reported to *on_failure*
        (quarantine) or raised (``keep_going=False``).
        """
        failure = tracker.record(point, kind, error)
        if failure is None:
            return True
        if on_failure is not None:
            on_failure(failure)
        if not self.keep_going:
            raise SweepExecutionError(
                f"sweep aborted (fail-fast): {failure.describe()}"
            ) from error
        return False


class SerialExecutor(SweepExecutor):
    """In-process, one point at a time — the determinism reference.

    The process-global table cache already deduplicates builds within
    one process, so the serial path needs no shared memory: a K-seed x
    M-parameter sweep over one topology builds its table once here
    too. Failures retry in place (with the policy's backoff) — crash
    and hang recovery are inherently process-pool features, so the
    serial path only ever sees the ``exception`` kind.
    """

    def __init__(self, *, epoch_cache_tables: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 keep_going: bool = True) -> None:
        self.epoch_cache_tables = epoch_cache_tables
        self.retry_policy = retry_policy or RetryPolicy()
        self.keep_going = keep_going

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None,
            on_failure: OnFailure | None = None,
            attempts: Mapping[str, int] | None = None
            ) -> list[PointOutcome]:
        base_payload = dataclasses.asdict(base)
        tracker = FailureTracker(self.retry_policy,
                                 attempts=dict(attempts or {}))
        outcomes = []
        for point in points:
            while True:
                attempt = tracker.failed_attempts(point)
                try:
                    outcome = execute_point(
                        base_payload, point_payload(point),
                        epoch_cache_tables=self.epoch_cache_tables,
                        attempt=attempt,
                    )
                except Exception as error:
                    if self._point_failed(point, "exception", error,
                                          tracker, on_failure):
                        delay = self.retry_policy.delay(attempt)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    break
                if on_result is not None:
                    on_result(outcome)
                outcomes.append(outcome)
                break
        outcomes.sort(key=lambda o: o.index)
        return outcomes


@dataclasses.dataclass
class _InFlight:
    """One submitted point: its attempt number and watchdog deadline."""

    point: SweepPoint
    attempt: int
    deadline: float | None


class ProcessExecutor(SweepExecutor):
    """Fan points out over a spawn-based process pool.

    Results are collected as they complete (so the store can persist
    incrementally) and re-sorted into canonical point order before
    returning; scheduling order never leaks into the output.

    At most ``jobs`` points are in flight at a time (the rest wait in
    a parent-side queue), so a submitted future is running almost
    immediately — which is what lets ``point_timeout`` deadlines be
    measured from submission. Three recovery paths:

    * a worker **exception** charges the point one attempt and
      reschedules it after the policy's backoff;
    * a **dead worker** breaks the whole pool; the executor kills and
      rebuilds it (at most ``max_pool_restarts`` times per run) and
      charges every lost in-flight point one ``crash`` attempt —
      attribution is impossible, and the charge makes a
      deterministically crashing point exhaust its budget instead of
      looping forever;
    * a point running past ``point_timeout`` is **hung**: pool
      workers cannot be cancelled individually, so the pool is killed
      and rebuilt, the hung point is charged a ``timeout`` attempt,
      and innocent in-flight points are resubmitted *without* losing
      budget.
    """

    def __init__(self, jobs: int, *, share_tables: bool = True,
                 cap_jobs: bool = False,
                 epoch_cache_tables: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 keep_going: bool = True,
                 point_timeout: float | None = None,
                 max_pool_restarts: int = 8) -> None:
        self.jobs = resolve_jobs(jobs, cap_jobs=cap_jobs)
        self.share_tables = share_tables
        self.epoch_cache_tables = epoch_cache_tables
        self.retry_policy = retry_policy or RetryPolicy()
        self.keep_going = keep_going
        if point_timeout is not None and point_timeout <= 0:
            raise ConfigurationError(
                f"point_timeout must be > 0, got {point_timeout}"
            )
        self.point_timeout = point_timeout
        if max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        self.max_pool_restarts = max_pool_restarts

    # ------------------------------------------------------------------
    # Shared-memory publication

    def _publish_tables(self, base: FastSimulationConfig,
                        points: Sequence[SweepPoint]
                        ) -> tuple[dict[str, dict], list[str]]:
        """Build each unique topology once and publish it to workers.

        Returns (handle payloads keyed by fingerprint, acquired
        fingerprints to release). Alongside the dense tables, every
        unique ``(topology, scenario schedule)`` among the points gets
        its epoch artifacts — per-epoch storer tables and sparse coded
        patches — precomputed here and published too, so replicas
        replaying one schedule install them instead of re-deriving the
        chain in every worker (the patch scan happens once per
        machine). Falls back to unshared execution — workers rebuild,
        exactly the pre-cache behavior — when shared memory is
        unavailable on this platform. Any failure mid-publication
        (including inside the epoch loop) releases exactly the handles
        acquired so far before falling back or re-raising: a partial
        publish must never leak segments.
        """
        from ..backends.fast import cached_overlay
        from ..perf.shared import shared_table_registry
        from ..perf.table_cache import global_table_cache

        payloads: dict[str, dict] = {}
        acquired: list[str] = []
        registry = shared_table_registry()
        try:
            for overlay_config in table_topologies(base, points):
                table = global_table_cache().get(
                    cached_overlay(overlay_config)
                )
                handle = registry.acquire(table)
                acquired.append(handle.fingerprint)
                payloads[handle.fingerprint] = handle.to_payload()
            self._publish_epoch_tables(
                base, points, registry, payloads, acquired
            )
        except BaseException as error:
            self._release_handles(acquired)
            if isinstance(error, (ImportError, OSError)):
                warnings.warn(
                    f"shared-memory table publication unavailable "
                    f"({error}); sweep workers will rebuild next-hop "
                    f"tables",
                    RuntimeWarning,
                )
                return {}, []
            raise
        return payloads, acquired

    def _publish_epoch_tables(self, base: FastSimulationConfig,
                              points: Sequence[SweepPoint],
                              registry, payloads: dict[str, dict],
                              acquired: list[str]) -> None:
        """Precompute and publish epoch artifacts per unique schedule.

        A schedule is identified by its topology fingerprint plus the
        composed scenario spec and epoch count — everything the
        chained fingerprints derive from — so seed replicas of one
        dynamics point share a single publication.
        """
        from ..backends.fast import cached_overlay
        from ..perf.table_cache import global_table_cache
        from ..scenarios.plan import precompute_epoch_tables

        seen: set[str] = set()
        for point in points:
            if not get_backend_class(point.backend).uses_next_hop_table:
                continue
            config = point.config(base)
            if not config.has_scenarios:
                continue
            scenario = config.scenario_stack()
            if scenario is None:
                continue
            ctx = config.scenario_context()
            table = global_table_cache().get(
                cached_overlay(config.overlay_config())
            )
            fingerprint = table.overlay.fingerprint()
            key = (f"epochs:{fingerprint}:"
                   f"{scenario.spec()}:{ctx.n_epochs}")
            if key in seen:
                continue
            seen.add(key)
            storer_tables, patches = precompute_epoch_tables(
                scenario, ctx,
                table_fingerprint=fingerprint,
                base_storers=table.storer,
                addresses=table.overlay.address_array(),
                coded=global_table_cache().writable_coded(table),
            )
            if not storer_tables and not patches:
                continue
            handle = registry.acquire_epochs(
                key, storer_tables, patches, table.n_nodes
            )
            acquired.append(key)
            payloads[key] = handle.to_payload()

    @staticmethod
    def _release_handles(acquired: Sequence[str]) -> None:
        """Release published segments, exception-safe per handle.

        One failing release (a segment torn down behind our back, a
        tracker hiccup) must not strand the remaining handles — each
        release is isolated and failures demote to warnings.
        """
        if not acquired:
            return
        from ..perf.shared import shared_table_registry

        registry = shared_table_registry()
        for key in acquired:
            try:
                registry.release(key)
            except Exception as error:  # pragma: no cover - best effort
                warnings.warn(
                    f"failed to release shared table segment {key!r}: "
                    f"{error}",
                    RuntimeWarning,
                )

    # ------------------------------------------------------------------
    # Pool lifecycle

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        )

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill every worker and shut the pool down without blocking.

        SIGKILL (not terminate) because the workers we tear down this
        way are hung or already broken — and a killed pool joins
        immediately, so the interpreter's atexit hook can never block
        on a worker that will not finish.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - best effort
            pass

    def _count_restart(self, restarts: int, why: str) -> int:
        restarts += 1
        if restarts > self.max_pool_restarts:
            raise SweepExecutionError(
                f"worker pool needed {restarts} restarts "
                f"(max_pool_restarts={self.max_pool_restarts}); "
                f"last cause: {why}. The sweep is likely facing a "
                f"systematic crash — run with --jobs 1 to see the "
                f"failure directly."
            )
        warnings.warn(
            f"sweep worker pool {why}; rebuilding "
            f"(restart {restarts}/{self.max_pool_restarts})",
            RuntimeWarning,
        )
        return restarts

    # ------------------------------------------------------------------
    # Execution

    def run(self, base: FastSimulationConfig,
            points: Sequence[SweepPoint],
            on_result: OnResult | None = None,
            on_failure: OnFailure | None = None,
            attempts: Mapping[str, int] | None = None
            ) -> list[PointOutcome]:
        if not points:
            return []
        base_payload = dataclasses.asdict(base)
        workers = min(self.jobs, len(points))
        handles: dict[str, dict] = {}
        acquired: list[str] = []
        if self.share_tables:
            handles, acquired = self._publish_tables(base, points)
        tracker = FailureTracker(self.retry_policy,
                                 attempts=dict(attempts or {}))
        outcomes: list[PointOutcome] = []
        #: Points eligible to run now (initial order = canonical).
        ready: deque[SweepPoint] = deque(points)
        #: Backoff-delayed retries: (ready_at, tiebreak, point).
        retries: list[tuple[float, int, SweepPoint]] = []
        sequence = itertools.count()
        inflight: dict = {}
        restarts = 0
        pool = self._new_pool(workers)
        try:
            while ready or retries or inflight:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    ready.append(heapq.heappop(retries)[2])
                broken = self._top_up(pool, base_payload, handles, ready,
                                      inflight, tracker, workers)
                if not broken:
                    if not inflight:
                        # Only backoff-delayed retries remain.
                        pause = max(0.0, retries[0][0] - time.monotonic())
                        time.sleep(min(pause, 0.25))
                        continue
                    done, _ = wait(
                        set(inflight),
                        timeout=self._wait_timeout(inflight, retries),
                        return_when=FIRST_COMPLETED,
                    )
                    broken = self._collect(done, inflight, outcomes,
                                           tracker, retries, sequence,
                                           on_result, on_failure)
                if broken:
                    restarts = self._count_restart(
                        restarts, "lost a worker process"
                    )
                    self._terminate_pool(pool)
                    lost = list(inflight.values())
                    inflight.clear()
                    pool = self._new_pool(workers)
                    for running in lost:
                        crash = WorkerCrash(
                            "worker process died while this point was "
                            "in flight"
                        )
                        if self._point_failed(running.point, "crash",
                                              crash, tracker, on_failure):
                            heapq.heappush(retries, (
                                time.monotonic()
                                + self.retry_policy.delay(running.attempt),
                                next(sequence), running.point,
                            ))
                    continue
                restarts, pool = self._reap_hung(
                    pool, workers, restarts, ready, retries, sequence,
                    inflight, tracker, on_failure,
                )
        finally:
            try:
                self._terminate_pool(pool)
            finally:
                self._release_handles(acquired)
        outcomes.sort(key=lambda o: o.index)
        return outcomes

    def _top_up(self, pool: ProcessPoolExecutor, base_payload: dict,
                handles: dict, ready: deque, inflight: dict,
                tracker: FailureTracker, workers: int) -> bool:
        """Submit ready points up to the worker count.

        Returns ``True`` when the pool turned out to be broken — the
        unsubmitted point goes back to the queue head and the caller
        runs crash recovery.
        """
        while ready and len(inflight) < workers:
            point = ready.popleft()
            attempt = tracker.failed_attempts(point)
            try:
                future = pool.submit(
                    execute_point, base_payload, point_payload(point),
                    handles or None, self.epoch_cache_tables, attempt,
                )
            except BrokenProcessPool:
                ready.appendleft(point)
                return True
            deadline = (
                None if self.point_timeout is None
                else time.monotonic() + self.point_timeout
            )
            inflight[future] = _InFlight(point, attempt, deadline)
        return False

    def _wait_timeout(self, inflight: dict,
                      retries: list) -> float | None:
        """How long :func:`wait` may block before bookkeeping is due."""
        now = time.monotonic()
        candidates = []
        if retries:
            candidates.append(retries[0][0] - now)
        deadlines = [running.deadline for running in inflight.values()
                     if running.deadline is not None]
        if deadlines:
            candidates.append(min(deadlines) - now)
        if not candidates:
            return None
        return max(0.05, min(candidates))

    def _collect(self, done, inflight: dict, outcomes: list,
                 tracker: FailureTracker, retries: list, sequence,
                 on_result: OnResult | None,
                 on_failure: OnFailure | None) -> bool:
        """Drain completed futures; ``True`` when the pool broke.

        On a broken pool the triggering future is pushed back into
        *inflight* so the caller's crash recovery charges it together
        with every other lost point.
        """
        for future in done:
            running = inflight.pop(future)
            try:
                outcome = future.result()
            except BrokenProcessPool:
                inflight[future] = running
                return True
            except Exception as error:
                if self._point_failed(running.point, "exception", error,
                                      tracker, on_failure):
                    heapq.heappush(retries, (
                        time.monotonic()
                        + self.retry_policy.delay(running.attempt),
                        next(sequence), running.point,
                    ))
            else:
                if on_result is not None:
                    on_result(outcome)
                outcomes.append(outcome)
        return False

    def _reap_hung(self, pool: ProcessPoolExecutor, workers: int,
                   restarts: int, ready: deque, retries: list, sequence,
                   inflight: dict, tracker: FailureTracker,
                   on_failure: OnFailure | None
                   ) -> tuple[int, ProcessPoolExecutor]:
        """Recycle the pool when any in-flight point is past deadline.

        The hung point is charged a ``timeout`` attempt; other
        in-flight points are innocent bystanders of the pool kill and
        requeue with their budget intact.
        """
        if self.point_timeout is None or not inflight:
            return restarts, pool
        now = time.monotonic()
        hung = [future for future, running in inflight.items()
                if running.deadline is not None
                and running.deadline <= now and not future.done()]
        if not hung:
            return restarts, pool
        hung_running = [inflight.pop(future) for future in hung]
        survivors = list(inflight.values())
        inflight.clear()
        restarts = self._count_restart(
            restarts,
            f"had {len(hung_running)} point(s) exceed "
            f"point_timeout={self.point_timeout:g}s",
        )
        self._terminate_pool(pool)
        pool = self._new_pool(workers)
        for running in survivors:
            ready.append(running.point)
        for running in hung_running:
            timeout_error = PointTimeout(
                f"point exceeded point-timeout "
                f"{self.point_timeout:g}s"
            )
            if self._point_failed(running.point, "timeout", timeout_error,
                                  tracker, on_failure):
                heapq.heappush(retries, (
                    time.monotonic()
                    + self.retry_policy.delay(running.attempt),
                    next(sequence), running.point,
                ))
        return restarts, pool


def make_executor(jobs: int, *, share_tables: bool = True,
                  cap_jobs: bool = False,
                  epoch_cache_tables: int | None = None,
                  retry_policy: RetryPolicy | None = None,
                  keep_going: bool = True,
                  point_timeout: float | None = None,
                  max_pool_restarts: int = 8,
                  workers: int | None = None,
                  spec: SweepSpec | None = None,
                  lease_timeout: float = 300.0,
                  shard_dir=None,
                  queue_host: str = "127.0.0.1",
                  queue_port: int = 0) -> SweepExecutor:
    """Serial for ``jobs == 1``, a spawn process pool otherwise.

    With ``workers`` set, a :class:`~repro.sweeps.distributed.
    DistributedExecutor` instead: *workers* host subprocesses pull
    points from an HTTP work queue and each runs ``jobs`` local
    processes. The distributed executor serves the sweep spec to its
    hosts, so ``spec`` is required then; ``lease_timeout``,
    ``shard_dir`` and the queue bind address apply only to it.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if workers is not None:
        if spec is None:
            raise ConfigurationError(
                "the distributed executor needs the sweep spec (it "
                "serves it to worker hosts); pass spec= alongside "
                "workers="
            )
        from .distributed import DistributedExecutor

        return DistributedExecutor(
            workers, spec=spec, jobs=jobs, share_tables=share_tables,
            cap_jobs=cap_jobs, epoch_cache_tables=epoch_cache_tables,
            retry_policy=retry_policy, keep_going=keep_going,
            point_timeout=point_timeout,
            max_pool_restarts=max_pool_restarts,
            lease_timeout=lease_timeout, host=queue_host,
            port=queue_port, shard_dir=shard_dir,
        )
    if jobs == 1:
        if point_timeout is not None:
            warnings.warn(
                "point_timeout needs the process executor (a hung "
                "in-process point has no watchdog); ignored for "
                "--jobs 1",
                RuntimeWarning,
            )
        return SerialExecutor(epoch_cache_tables=epoch_cache_tables,
                              retry_policy=retry_policy,
                              keep_going=keep_going)
    return ProcessExecutor(jobs, share_tables=share_tables,
                           cap_jobs=cap_jobs,
                           epoch_cache_tables=epoch_cache_tables,
                           retry_policy=retry_policy,
                           keep_going=keep_going,
                           point_timeout=point_timeout,
                           max_pool_restarts=max_pool_restarts)
