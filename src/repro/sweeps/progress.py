"""Rate-limited sweep progress reporting to stderr.

All three executors (serial, process, distributed) report progress
through the same :class:`ProgressReporter`, fed from the engine's
``on_result``/``on_failure`` callbacks — so ``completed/total ·
points/s · ETA`` means the same thing regardless of ``--jobs`` or
``--workers``, and the executors themselves stay print-free.

Progress goes to **stderr**, never stdout: sweep stdout is the
machine-readable surface (breakdown, summaries) and must stay clean
for pipelines. By default the reporter only draws when stderr is a
tty (interactive runs get a live ``\\r``-rewritten line; CI logs stay
quiet); ``--progress`` forces it on — then a non-tty stream gets
plain newline-terminated lines so logs remain readable — and
``--no-progress`` forces it off.

The throughput figure counts only *freshly executed* points: a
resumed sweep that skips 900 already-stored points must not claim an
absurd rate for the 100 it actually ran, and the ETA is computed from
that honest rate. Emission is rate-limited (default twice a second)
so tight sweeps of tiny points do not spend their time repainting a
terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

__all__ = ["ProgressReporter"]


def _format_eta(seconds: float) -> str:
    """``m:ss`` / ``h:mm:ss`` rendering of a (non-negative) duration."""
    total = max(0, int(seconds + 0.5))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Periodic ``completed/total · points/s · ETA`` lines on a stream.

    ``total`` counts every point the sweep will account for, including
    the ``completed`` already present in a resumed store; the rate and
    ETA are computed from points finished *after* construction.

    ``enabled=None`` (the default) auto-detects: progress draws only
    when *stream* is a tty. Pass ``True``/``False`` to force (the
    ``--progress``/``--no-progress`` flags). The reporter is safe to
    drive from any single thread; the engine calls it from the main
    thread's result callbacks only.
    """

    def __init__(self, total: int, *, completed: int = 0,
                 enabled: bool | None = None,
                 stream: TextIO | None = None,
                 interval: float = 0.5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = self._tty if enabled is None else bool(enabled)
        self.total = int(total)
        self.completed = int(completed)
        self._resumed = int(completed)
        self._interval = float(interval)
        self._clock = clock
        self._start = clock()
        self._next_emit = self._start  # first advance may draw at once
        self._line_len = 0
        self._closed = False

    def advance(self, n: int = 1) -> None:
        """Count *n* finished points (success or quarantine) and maybe draw."""
        self.completed += n
        if not self.enabled or self._closed:
            return
        now = self._clock()
        if now >= self._next_emit or self.completed >= self.total:
            self._emit(now)
            self._next_emit = now + self._interval

    def close(self) -> None:
        """Draw one final line and, on a tty, terminate it with a newline."""
        if self._closed:
            return
        self._closed = True
        if not self.enabled:
            return
        self._emit(self._clock())
        if self._tty:
            self.stream.write("\n")
            self.stream.flush()

    def _render(self, now: float) -> str:
        fresh = self.completed - self._resumed
        elapsed = max(now - self._start, 1e-9)
        line = f"sweep {self.completed}/{self.total}"
        if fresh > 0:
            rate = fresh / elapsed
            line += f" · {rate:.1f} points/s"
            remaining = self.total - self.completed
            if remaining > 0:
                line += f" · eta {_format_eta(remaining / rate)}"
        return line

    def _emit(self, now: float) -> None:
        line = self._render(now)
        if self._tty:
            # Rewrite in place, blank-padding any leftover of a longer
            # previous line.
            pad = max(0, self._line_len - len(line))
            self.stream.write("\r" + line + " " * pad)
            self._line_len = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
