"""Failure envelopes and retry policy for fault-tolerant sweeps.

Sweep executors wrap every point execution in a :class:`PointResult`
envelope instead of letting a worker exception unwind the whole run:
a successful attempt carries its
:class:`~repro.sweeps.worker.PointOutcome`, a failed one a
:class:`PointFailure` (exception type, message digest, attempt
count). A deterministic :class:`RetryPolicy` — capped exponential
backoff, deliberately **without** jitter so nothing time-dependent
ever reaches recorded state — re-runs failed points up to
``max_retries`` extra attempts; points that exhaust the budget are
*quarantined* into the store's ``failures`` section (sorted, no
timestamps) rather than aborting the sweep, unless ``--fail-fast``
asked for the abort.

The design invariant: a point that fails and then succeeds within the
retry budget leaves **no trace** in the result store — its record is
identical to a never-failed run's, which is what extends the sweep
subsystem's byte-determinism guarantee from "regardless of --jobs" to
"regardless of recovered faults".
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError
from .spec import SweepPoint

__all__ = [
    "FAILURE_KINDS",
    "FailureTracker",
    "PointFailure",
    "PointResult",
    "RetryPolicy",
    "failure_digest",
]

#: How a point attempt can fail: an exception raised by the worker, a
#: wall-clock ``--point-timeout`` expiry (hang), or the death of the
#: worker process itself (segfault, OOM-kill, injected ``os._exit``).
FAILURE_KINDS = ("exception", "timeout", "crash")


def failure_digest(error: BaseException) -> str:
    """A short deterministic digest of an exception chain.

    Hashes ``traceback.format_exception_only`` over the full
    ``__cause__``/``__context__`` chain — type and message only, never
    file paths or line numbers — so the digest is identical whether
    the exception was raised in-process (serial executor) or pickled
    back from a spawn worker (whose traceback frames do not survive
    the trip), and identical across machines and checkouts.
    """
    parts: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.extend(traceback.format_exception_only(type(current), current))
        current = current.__cause__ or current.__context__
    return hashlib.sha256("".join(parts).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PointFailure:
    """One sweep point's terminal failure after its last attempt.

    ``error`` is the human-readable ``Type: message`` of the last
    failure, ``digest`` the deterministic exception-chain hash (see
    :func:`failure_digest`), ``attempts`` the total number of tries
    (``max_retries + 1`` when the budget was exhausted).
    """

    point: SweepPoint
    kind: str
    error: str
    digest: str
    attempts: int

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    @property
    def point_id(self) -> str:
        return self.point.point_id

    def record(self) -> dict[str, Any]:
        """The deterministic store record (sorted keys, no timestamps).

        Mirrors :func:`~repro.sweeps.engine.outcome_record` minus the
        metrics: the quarantined point stays fully identified (backend,
        overrides, replica, derived seed) so a later resume — which
        clears the entry and re-runs the point — needs nothing but the
        store.
        """
        return {
            "point_id": self.point.point_id,
            "backend": self.point.backend,
            "overrides": dict(self.point.overrides),
            "replica": self.point.replica,
            "workload_seed": self.point.workload_seed,
            "kind": self.kind,
            "error": self.error,
            "digest": self.digest,
            "attempts": self.attempts,
        }

    def describe(self) -> str:
        """One human-readable line for CLI summaries."""
        return (f"{self.point.point_id}: {self.kind} after "
                f"{self.attempts} attempt(s) — {self.error}")


@dataclass(frozen=True)
class PointResult:
    """Envelope around one point's execution: outcome or failure."""

    outcome: Any = None
    failure: PointFailure | None = None
    attempts: int = 1

    def __post_init__(self) -> None:
        if (self.outcome is None) == (self.failure is None):
            raise ConfigurationError(
                "a PointResult carries exactly one of outcome/failure"
            )

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff for failed points.

    ``max_retries`` is the number of *extra* attempts after the first
    (so a point runs at most ``max_retries + 1`` times). The delay
    before retry ``a`` (0-based failed-attempt index) is
    ``min(backoff_cap, backoff_base * 2**a)`` — no jitter: randomized
    delays would make two runs of the same faulted sweep schedule
    differently, and while scheduling never reaches the recorded
    state, keeping the whole layer deterministic makes fault-plan
    tests exactly reproducible.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                "retry backoff times must be >= 0"
            )

    def allows(self, attempt: int) -> bool:
        """Whether failed attempt *attempt* (0-based) may be retried."""
        return attempt < self.max_retries

    def delay(self, attempt: int) -> float:
        """Seconds to wait before the retry after failed *attempt*."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))


@dataclass
class FailureTracker:
    """Per-run bookkeeping of attempts and quarantined failures.

    Owned by an executor during one :meth:`run`; maps each point to
    its failed-attempt count and collects the failures that exhausted
    the policy. ``record`` returns ``True`` when the point may retry.
    """

    policy: RetryPolicy
    attempts: dict[str, int] = field(default_factory=dict)
    quarantined: list[PointFailure] = field(default_factory=list)

    def record(self, point: SweepPoint, kind: str,
               error: BaseException) -> PointFailure | None:
        """Count one failed attempt; quarantine when the budget is gone.

        Returns ``None`` while the policy still allows a retry, else
        the terminal :class:`PointFailure` (also appended to
        ``quarantined``).
        """
        return self.record_reported(
            point, kind,
            error=f"{type(error).__name__}: {error}",
            digest=failure_digest(error),
        )

    def record_reported(self, point: SweepPoint, kind: str, *,
                        error: str, digest: str) -> PointFailure | None:
        """Count a failure observed (and digested) somewhere else.

        The distributed work queue's failure reports arrive as plain
        data — the exception object died with the worker host, but the
        host already rendered the deterministic message and
        :func:`failure_digest` — so the tracker counts the attempt
        from the reported fields instead of a live exception. Same
        return contract as :meth:`record`.
        """
        attempt = self.attempts.get(point.point_id, 0)
        self.attempts[point.point_id] = attempt + 1
        if self.policy.allows(attempt):
            return None
        failure = PointFailure(
            point=point,
            kind=kind,
            error=error,
            digest=digest,
            attempts=attempt + 1,
        )
        self.quarantined.append(failure)
        return failure

    def failed_attempts(self, point: SweepPoint) -> int:
        """0-based count of failed attempts so far for *point*."""
        return self.attempts.get(point.point_id, 0)
