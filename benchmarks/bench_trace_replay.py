"""Dynamics-trace replay benchmark: recording must be (nearly) free.

Two claims:

1. **Replay costs what the direct run costs** — a replayed
   :class:`~repro.scenarios.trace.DynamicsTrace` feeds the identical
   per-epoch events into the identical kernel, so the simulation time
   must stay within noise of running the source scenario string
   directly (the replay swaps schedule *generation* for a JSON load).
2. **The round trip is exact** — per-node forwarded/first-hop vectors
   and hop histograms are bit-identical (also golden-pinned in
   ``tests/backends/test_golden_trace_replay.py``; asserted here too
   so the benchmark never reports the speed of a wrong answer).

Runs as a pytest module (``pytest benchmarks/bench_trace_replay.py``)
and as a script::

    python benchmarks/bench_trace_replay.py --quick
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.fast import clear_caches
from repro.scenarios.trace import record_dynamics

SPEC = "churn:rate=0.1,recompute=true+caching:size=256"


def _measure_round_trip(n_nodes: int, n_files: int,
                        repeats: int = 3) -> dict:
    config = FastSimulationConfig(
        n_nodes=n_nodes, n_files=n_files, batch_files=64,
        catalog_size=200, originator_share=0.5, scenario=SPEC,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dynamics.json"

        started = time.perf_counter()
        record_dynamics(
            config.scenario_stack(), config.scenario_context()
        ).save(path)
        record_seconds = time.perf_counter() - started

        replay_config = dataclasses.replace(
            config, scenario=f"trace:path={path}"
        )
        best_direct = best_replay = float("inf")
        direct = replay = None
        for _ in range(repeats):
            clear_caches()
            started = time.perf_counter()
            direct = run_simulation(config)
            best_direct = min(best_direct,
                              time.perf_counter() - started)
            clear_caches()
            started = time.perf_counter()
            replay = run_simulation(replay_config)
            best_replay = min(best_replay,
                              time.perf_counter() - started)

    assert direct is not None and replay is not None
    identical = (
        np.array_equal(direct.forwarded, replay.forwarded)
        and np.array_equal(direct.first_hop, replay.first_hop)
        and direct.hop_histogram == replay.hop_histogram
    )
    return {
        "scenario": SPEC,
        "record_seconds": record_seconds,
        "direct_seconds": best_direct,
        "replay_seconds": best_replay,
        "overhead": best_replay / max(best_direct, 1e-9),
        "identical": identical,
    }


def test_replay_within_noise_of_direct(bench_scale):
    report = _measure_round_trip(
        n_nodes=bench_scale["n_nodes"],
        n_files=min(bench_scale["n_files"], 512),
    )
    print()
    print(
        f"{report['scenario']}: direct {report['direct_seconds']:.2f}s, "
        f"replay {report['replay_seconds']:.2f}s "
        f"({report['overhead']:.2f}x), record "
        f"{report['record_seconds'] * 1e3:.0f}ms"
    )
    assert report["identical"], "replay diverged from the direct run"
    # Very loose bound for shared runners: replay must never turn the
    # event serialization into a kernel-scale cost.
    assert report["overhead"] < 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="dynamics-trace replay benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale (300 nodes, 256 files) instead of paper scale",
    )
    args = parser.parse_args(argv)

    n_nodes = 300 if args.quick else 1000
    n_files = 256 if args.quick else 2000
    report = _measure_round_trip(n_nodes=n_nodes, n_files=n_files)
    print(
        f"{report['scenario']} @ {n_nodes} nodes / {n_files} files: "
        f"direct {report['direct_seconds']:.2f}s, replay "
        f"{report['replay_seconds']:.2f}s ({report['overhead']:.2f}x), "
        f"record+save {report['record_seconds'] * 1e3:.0f}ms"
    )
    if not report["identical"]:
        print("FAIL: replay diverged from the direct run",
              file=sys.stderr)
        return 1
    if report["overhead"] >= 2.0:
        print("FAIL: replay overhead exceeded 2x the direct run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
