"""Table lifecycle benchmark: cold build vs shared-memory attach.

Quantifies what the :mod:`repro.perf` cache saves per sweep worker:
a cold :class:`NextHopTable` build is seconds of XOR scans over the
whole address space, while attaching the published table is a few
shared-memory mappings. The assertion is deliberately loose (100x) —
the real attach win is 3–4 orders of magnitude, but shared CI runners
are noisy.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.fast import NextHopTable, cached_overlay
from repro.backends.config import FastSimulationConfig
from repro.perf.shared import attach_table, shared_table_registry


def test_cold_build_vs_cache_attach(bench_scale):
    config = FastSimulationConfig(
        n_files=bench_scale["n_files"], n_nodes=bench_scale["n_nodes"],
    )
    overlay = cached_overlay(config.overlay_config())

    started = time.perf_counter()
    table = NextHopTable(overlay)
    _ = table.flat_coded
    build_s = time.perf_counter() - started

    registry = shared_table_registry()
    started = time.perf_counter()
    handle = registry.acquire(table)
    publish_s = time.perf_counter() - started
    try:
        started = time.perf_counter()
        attached = attach_table(handle, overlay)
        attach_s = time.perf_counter() - started
        assert np.array_equal(attached.next_hop, table.next_hop)
        assert np.array_equal(attached.storer, table.storer)
    finally:
        registry.release(handle.fingerprint)

    table_mb = table.next_hop.nbytes / 1e6
    print()
    print(
        f"next-hop table {table.next_hop.shape} {table.next_hop.dtype} "
        f"({table_mb:.0f} MB): cold build {build_s:.3f}s, publish "
        f"{publish_s:.3f}s, attach {attach_s * 1e3:.2f}ms "
        f"({build_s / max(attach_s, 1e-9):,.0f}x)"
    )
    assert attach_s * 100 < build_s, (
        "attaching a published table must beat rebuilding it by far"
    )
