"""Extension benchmark: Zipf content popularity (paper §V).

Replaces the paper's uniform chunk addresses with a Zipf-popular
catalog and reports the fairness impact of request concentration.
"""

from __future__ import annotations

from repro.experiments.ablations import run_popularity

EXPONENTS = (0.5, 1.0, 1.5)


def test_popularity(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_popularity,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
            "exponents": EXPONENTS,
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert "uniform" in series
    assert len(series) == 1 + len(EXPONENTS)
    for value in series.values():
        assert 0.0 <= value <= 1.0
