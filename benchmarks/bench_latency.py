"""Extension benchmark: retrieval latency vs bucket size.

The performance companion to the paper's fairness result: every hop
saved by a larger routing table is a saved round trip, so k=20 cuts
both mean and tail retrieval latency.
"""

from __future__ import annotations

from repro.experiments.extensions import run_latency


def test_latency(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_latency,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    ks = sorted(series)
    # Mean latency decreases monotonically with k.
    means = [series[k]["mean_ms"] for k in ks]
    assert means == sorted(means, reverse=True)
