"""Extension benchmark: retrieval latency vs bucket size, plus the
time-domain backend's equivalence and throughput smoke.

The pytest entry point keeps the original claim — every hop saved by
a larger routing table is a saved round trip, so k=20 cuts both mean
and tail retrieval latency. The script entry point is the CI
perf-smoke gate for the ``time`` backend::

    python benchmarks/bench_latency.py --quick

It asserts the acceptance oracle (with unbounded bandwidth the time
backend's per-node counters are bit-identical to the fast backend)
and then measures the contended event wheel under the headline
:data:`~repro.perf.bench.LATENCY_PROFILE`.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

import numpy as np

from repro.backends import get_backend
from repro.backends.config import FastSimulationConfig
from repro.experiments.extensions import run_latency
from repro.perf.bench import LATENCY_PROFILE


def test_latency(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_latency,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    ks = sorted(series)
    # Mean latency decreases monotonically with k.
    means = [series[k]["mean_ms"] for k in ks]
    assert means == sorted(means, reverse=True)


def _check_equivalence(config: FastSimulationConfig) -> list[str]:
    """Unbounded-bandwidth time run vs fast run: exact counters."""
    fast = get_backend("fast").prepare(config).run()
    timed = get_backend("time").prepare(config).run()
    problems = []
    for attr in ("forwarded", "first_hop", "income", "expenditure"):
        if not np.array_equal(getattr(fast, attr), getattr(timed, attr)):
            problems.append(f"per-node {attr} diverged from fast")
    for attr in ("total_hops", "local_hits", "fallbacks", "cache_hits",
                 "unavailable", "chunks"):
        if getattr(fast, attr) != getattr(timed, attr):
            problems.append(f"{attr} diverged from fast")
    if fast.hop_histogram != timed.hop_histogram:
        problems.append("hop histogram diverged from fast")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="time-domain backend benchmark (equivalence + wheel)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale (300 nodes, 1000 files) instead of paper scale",
    )
    args = parser.parse_args(argv)

    n_nodes = 300 if args.quick else 1000
    n_files = 1000 if args.quick else 10_000
    base = FastSimulationConfig(
        n_nodes=n_nodes, n_files=n_files, hop_latency_ms=30.0
    )

    failures = _check_equivalence(base)
    failures += _check_equivalence(
        dataclasses.replace(base, scenario="churn:rate=0.1+caching")
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"equivalence: time backend matches fast bit-for-bit "
        f"({n_nodes} nodes, {n_files} files, static + churn/caching)"
    )

    contended = dataclasses.replace(base, **LATENCY_PROFILE)
    started = time.perf_counter()
    result = get_backend("time").prepare(contended).run()
    elapsed = time.perf_counter() - started
    stats = result.latency_stats()
    print(
        f"event wheel: {result.chunks:,} chunks in {elapsed:.1f}s "
        f"({result.chunks / elapsed:,.0f} chunks/s), {stats}"
    )
    # Contention can only make retrievals slower than pure propagation.
    floor_ms = 2.0 * contended.hop_latency_ms
    routed = result.latency_ms[result.latency_ms > 0]
    if routed.size and routed.min() < floor_ms - 1e-9:
        print(
            f"FAIL: a routed chunk finished in {routed.min():.1f}ms, "
            f"below the one-hop propagation floor {floor_ms:.1f}ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
