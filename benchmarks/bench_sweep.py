"""Benchmark: sweep throughput, serial vs process-pool parallel.

Runs the same bucket-size x seed-replica sweep through the serial
executor and a ``--jobs``-style process pool and reports points/sec
for each plus the speedup. On a multi-core runner the parallel pass
should approach ``min(jobs, cores)``x once per-worker overlay builds
amortize; on a single core it mostly measures spawn overhead. Either
way the asserted *correctness* property holds: both passes produce
identical per-point metrics.

Scale knobs follow the harness convention::

    REPRO_BENCH_FILES=2000 REPRO_BENCH_JOBS=8 pytest benchmarks/bench_sweep.py -s
"""

from __future__ import annotations

import os
import time

from repro.backends.config import FastSimulationConfig
from repro.sweeps import SweepSpec, run_sweep

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def test_sweep_serial_vs_parallel(bench_scale):
    spec = SweepSpec(
        base=FastSimulationConfig(
            n_nodes=bench_scale["n_nodes"],
            n_files=bench_scale["n_files"],
        ),
        grid={"bucket_size": (4, 8, 16)},
        backends=("fast",),
        seeds=4,
    )

    started = time.perf_counter()
    serial = run_sweep(spec, jobs=1)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(spec, jobs=BENCH_JOBS)
    parallel_elapsed = time.perf_counter() - started

    print()
    print(
        f"sweep of {len(spec)} points "
        f"({bench_scale['n_files']} files x {bench_scale['n_nodes']} "
        f"nodes per point)"
    )
    print(
        f"  serial:          {serial_elapsed:6.2f}s "
        f"({len(spec) / serial_elapsed:6.2f} points/s)"
    )
    print(
        f"  parallel (x{BENCH_JOBS}): {parallel_elapsed:6.2f}s "
        f"({len(spec) / parallel_elapsed:6.2f} points/s)"
    )
    print(f"  speedup:         {serial_elapsed / parallel_elapsed:5.2f}x")

    assert serial.executed == parallel.executed == len(spec)
    assert serial.records == parallel.records
    assert serial.summaries == parallel.summaries
