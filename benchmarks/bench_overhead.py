"""Extension benchmark: overhead-adjusted earnings (paper §V, thread 1).

"There should be a trade-off between the quantity of overhead
generated and the amount of money received." Nets per-node income
against connection keepalive, settlement transactions, and channel
state for k=4 vs k=20.
"""

from __future__ import annotations

from repro.experiments.extensions import run_overhead


def test_overhead(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_overhead,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    # k=20's larger table must cost a larger share of gross income.
    assert series[20]["share"] > series[4]["share"]
    assert series[4]["net"] <= series[4]["gross"]
    assert series[20]["net"] <= series[20]["gross"]
