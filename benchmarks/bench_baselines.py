"""Comparison benchmark: SWAP vs alternative incentive mechanisms.

Places the paper's mechanism between the idealized bounds (per-chunk
reward = perfect F1, equal split = perfect F2) and alongside
Filecoin-style storage rewards and BitTorrent tit-for-tat.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_baselines


def test_baselines(benchmark):
    report = benchmark.pedantic(
        run_baselines,
        kwargs={"n_files": 300, "n_nodes": 200},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    rows = report.data["rows"]
    _, f1_ideal = rows["per-chunk reward (F1-ideal)"]
    f2_ideal, _ = rows["equal split (F2-ideal)"]
    assert f1_ideal == pytest.approx(0.0, abs=1e-9)
    assert f2_ideal == pytest.approx(0.0, abs=1e-9)
    swap_f2, swap_f1 = rows["swap"]
    assert swap_f1 > f1_ideal
    assert swap_f2 > f2_ideal
    assert report.data["tft_completion"] == 1.0
