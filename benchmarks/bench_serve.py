"""Serve-path benchmark: streamed throughput and bounded memory.

Two claims behind ``repro-swarm serve``:

1. **Streaming costs what batch costs** — micro-epoch execution
   through the persistent :class:`StreamSession` plus online
   aggregation must stay within noise of the one-shot batch run
   (the kernel is identical; the session only re-plumbs state), and
   the final aggregate must be *bit-identical* to the batch result.
2. **Memory is bounded independent of stream length** — the session
   holds O(n_nodes) state plus one micro-batch, so RSS sampled early
   in the stream and at its end must agree (no per-request growth).

Runs as a pytest module (``pytest benchmarks/bench_serve.py``) and as
a script::

    python benchmarks/bench_serve.py --quick
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis.streaming import StreamingAggregator
from repro.backends.config import FastSimulationConfig
from repro.backends.fast import FastSimulation, StreamSession
from repro.perf.bench import _rss_kib
from repro.workloads.streams import GeneratorStream

#: RSS growth allowed between the early-stream sample and the end of
#: the stream. The true session state is a few MiB at paper scale;
#: the slack absorbs allocator noise on shared runners.
MAX_RSS_GROWTH_KIB = 64_000


def _measure_serve(n_nodes: int, n_files: int, *,
                   max_batch: int = 256, repeats: int = 3) -> dict:
    config = FastSimulationConfig(n_nodes=n_nodes, n_files=n_files)
    simulation = FastSimulation(config)
    addresses = simulation.overlay.address_array()
    _ = simulation.table.flat_coded  # build outside the timed region

    batch_started = time.perf_counter()
    batch_result = simulation.run()
    batch_seconds = time.perf_counter() - batch_started

    best_seconds = float("inf")
    aggregator = None
    rss_early = rss_end = 0
    early_epoch = max(1, (n_files // max_batch) // 4)
    for _ in range(repeats):
        stream = GeneratorStream(config.workload(),
                                 max_batch=max_batch)
        aggregator = StreamingAggregator(addresses.astype(np.int64))
        started = time.perf_counter()
        with StreamSession(simulation) as session:
            for events in stream.batches(addresses, simulation.space):
                scratch = simulation.new_result()
                file_origins, sizes, targets = (
                    simulation.flatten_events(events)
                )
                scratch.files += len(sizes)
                session.feed(np.repeat(file_origins, sizes), targets,
                             into=scratch)
                aggregator.absorb(scratch)
                if session.epochs_fed == early_epoch:
                    rss_early = _rss_kib()
        best_seconds = min(best_seconds,
                           time.perf_counter() - started)
        rss_end = _rss_kib()

    assert aggregator is not None
    return {
        "n_nodes": n_nodes,
        "n_files": n_files,
        "max_batch": max_batch,
        "chunks": aggregator.chunks,
        "batch_seconds": batch_seconds,
        "stream_seconds": best_seconds,
        "chunks_per_second": aggregator.chunks / best_seconds,
        "overhead": best_seconds / max(batch_seconds, 1e-9),
        "rss_early_kib": rss_early,
        "rss_end_kib": rss_end,
        "rss_growth_kib": rss_end - rss_early,
        "identical": aggregator.matches_result(batch_result),
    }


def _render(report: dict) -> str:
    return (
        f"serve @ {report['n_nodes']} nodes / {report['n_files']} "
        f"files (max_batch={report['max_batch']}): "
        f"{report['chunks_per_second']:,.0f} chunks/s streamed "
        f"({report['overhead']:.2f}x batch), RSS "
        f"{report['rss_end_kib'] / 1024:.0f} MiB "
        f"({report['rss_growth_kib']:+,} KiB after early-stream)"
    )


def test_serve_streams_bit_identically_in_bounded_memory(bench_scale):
    report = _measure_serve(
        n_nodes=bench_scale["n_nodes"],
        n_files=bench_scale["n_files"],
    )
    print()
    print(_render(report))
    assert report["identical"], "streamed aggregate diverged from batch"
    assert report["rss_growth_kib"] < MAX_RSS_GROWTH_KIB
    # Very loose bound for shared runners: session re-plumbing must
    # never turn into a kernel-scale cost.
    assert report["overhead"] < 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="serve-path benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale (300 nodes, 2000 files) instead of paper scale",
    )
    parser.add_argument(
        "--min-rate", type=float, default=0.0, metavar="CHUNKS_PER_S",
        help="fail below this streamed throughput (default: no floor)",
    )
    args = parser.parse_args(argv)

    n_nodes = 300 if args.quick else 1000
    n_files = 2000 if args.quick else 10_000
    report = _measure_serve(n_nodes=n_nodes, n_files=n_files)
    print(_render(report))
    if not report["identical"]:
        print("FAIL: streamed aggregate diverged from the batch run",
              file=sys.stderr)
        return 1
    if report["rss_growth_kib"] >= MAX_RSS_GROWTH_KIB:
        print(
            f"FAIL: RSS grew {report['rss_growth_kib']:,} KiB over the "
            f"stream (bound: {MAX_RSS_GROWTH_KIB:,})", file=sys.stderr,
        )
        return 1
    if args.min_rate and report["chunks_per_second"] < args.min_rate:
        print(
            f"FAIL: {report['chunks_per_second']:,.0f} chunks/s is "
            f"below the {args.min_rate:,.0f} floor", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
