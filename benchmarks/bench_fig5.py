"""Benchmark + regeneration of Figure 5 (F2 Lorenz curves and Gini).

Prints the Lorenz curves of per-node income for all four
configurations plus the Gini table. Asserted shape, as in the paper:
k=20 yields a lower (fairer) F2 Gini than k=4 under both workloads,
and the skewed 20 %-originator workload is less fair than 100 %.
"""

from __future__ import annotations

from repro.experiments.paper import run_fig5


def test_fig5(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_fig5, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    gini = report.data["gini"]
    assert gini["k=20,share=0.2"] < gini["k=4,share=0.2"]
    assert gini["k=20,share=1.0"] < gini["k=4,share=1.0"]
    assert gini["k=4,share=0.2"] > gini["k=4,share=1.0"]
