"""Benchmark + regeneration of Figure 4 (forwarded-chunk distributions).

Prints the per-node forwarded-chunk histograms for all four
configurations and checks the paper's area comparison: the k=4
frequency curve encloses more area (more total bandwidth) than k=20,
more so under the skewed 20 %-originator workload (paper: 1.6x at
20 %, 1.25x at 100 %).
"""

from __future__ import annotations

from repro.experiments.paper import run_fig4


def test_fig4(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_fig4, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    ratio_skewed = report.data["area_ratio_0.2"]
    ratio_uniform = report.data["area_ratio_1.0"]
    assert ratio_skewed > 1.0
    assert ratio_uniform > 1.0
    # The paper's qualitative ordering: both ratios in a sane band.
    assert 1.0 < ratio_uniform < 2.5
    assert 1.0 < ratio_skewed < 2.5
