"""Extension benchmark: the storage-incentive loop (paper §V).

Runs postage purchase → stamping → rent collection → stake-weighted
redistribution and compares the fairness of the storage reward stream
with the paper's bandwidth stream.
"""

from __future__ import annotations

from repro.experiments.storage import run_storage


def test_storage(benchmark):
    report = benchmark.pedantic(
        run_storage,
        kwargs={
            "n_files": 400, "n_nodes": 300, "n_rounds": 300,
            "uploads": 100,
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    # Rent that was collected got paid out (pot drains each round).
    assert report.data["pot_remaining"] == 0.0
    # The lottery paid a meaningful set of distinct winners.
    assert report.data["distinct_winners"] > 10
    # Most planted cheaters are caught once their neighborhood is drawn.
    assert (
        report.data["cheaters_detected"]
        <= report.data["cheaters_planted"]
    )
    assert 0.0 <= report.data["storage_gini"] <= 1.0
