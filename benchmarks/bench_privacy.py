"""Extension benchmark: identity exposure (paper §III-A).

Quantifies the privacy claim that motivates forwarding Kademlia: an
iterative lookup reveals the requester to every queried node, while
forwarding reveals it only to the first hop.
"""

from __future__ import annotations

from repro.experiments.extensions import run_privacy


def test_privacy(benchmark):
    report = benchmark.pedantic(
        run_privacy,
        kwargs={"n_files": 100, "n_nodes": 300, "lookups_per_file": 5},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    # Iterative lookups must expose the requester to many more nodes
    # than forwarding's single first hop.
    assert report.data["mean_exposure"] > 3.0
    assert report.data["mean_rounds"] >= 1.0
