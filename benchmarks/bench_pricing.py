"""Ablation benchmark: pricing strategies (DESIGN.md design choice).

The paper prices requests by XOR distance; this ablation isolates how
much of the measured income inequality comes from price dispersion
versus traffic dispersion by comparing xor, proximity-step, and flat
pricing under both bucket sizes.
"""

from __future__ import annotations

from repro.experiments.ablations import run_pricing


def test_pricing(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_pricing,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    for pricing in ("xor", "proximity", "flat"):
        # k=20 is fairer regardless of the pricing strategy.
        assert series[pricing][20] < series[pricing][4]
    # Flat pricing removes price dispersion, so it cannot be less fair
    # than xor pricing on the same traffic.
    assert series["flat"][4] <= series["xor"][4] + 0.02
