"""Micro-benchmarks of the library's hot paths.

These time the individual components — Gini computation, overlay
construction, next-hop table building, routing throughput in both
backends — so performance regressions are visible independently of
the experiment-level numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fairness import gini, lorenz_curve
from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.kademlia.routing import Router


@pytest.fixture(scope="module")
def overlay() -> Overlay:
    return Overlay.build(
        OverlayConfig(n_nodes=300, bits=14,
                      limits=BucketLimits.uniform(4), seed=2)
    )


def test_gini_100k_values(benchmark):
    values = np.random.default_rng(0).random(100_000)
    result = benchmark(gini, values)
    assert 0.0 <= result <= 1.0


def test_lorenz_curve_100k_values(benchmark):
    values = np.random.default_rng(0).random(100_000)
    curve = benchmark(lorenz_curve, values)
    assert curve.cumulative[-1] == pytest.approx(1.0)


def test_overlay_build_300_nodes(benchmark):
    config = OverlayConfig(n_nodes=300, bits=14,
                           limits=BucketLimits.uniform(4), seed=3)
    overlay = benchmark.pedantic(
        Overlay.build, args=(config,), rounds=3, iterations=1,
    )
    assert len(overlay) == 300


def test_reference_routing_throughput(benchmark, overlay):
    router = Router(overlay)
    rng = np.random.default_rng(1)
    origins = rng.choice(overlay.address_array(), size=500)
    targets = rng.integers(0, overlay.space.size, size=500)

    def route_batch():
        for origin, target in zip(origins, targets):
            router.route(int(origin), int(target))
        return router.stats.routes

    assert benchmark(route_batch) > 0


def test_fast_simulation_chunk_throughput(benchmark):
    config = FastSimulationConfig(
        n_nodes=300, bits=14, bucket_size=4, originator_share=1.0,
        n_files=100, file_min=100, file_max=200,
        overlay_seed=4, workload_seed=5,
    )
    simulation = FastSimulation(config)  # table built outside the timer

    result = benchmark(simulation.run)
    assert result.chunks >= 100 * 100


def test_next_hop_table_build(benchmark):
    from repro.backends.fast import NextHopTable

    overlay = Overlay.build(
        OverlayConfig(n_nodes=200, bits=12,
                      limits=BucketLimits.uniform(4), seed=6)
    )
    table = benchmark.pedantic(
        NextHopTable, args=(overlay,), rounds=3, iterations=1,
    )
    assert table.n_nodes == 200
