"""Ablation benchmark: widening only bucket zero (paper §V idea).

"It is interesting to see what happens in payment distribution if we
only increase the k for a particular bucket, e.g., bucket zero."
Bucket zero serves roughly half of all first hops, so widening it
alone should capture much of the k=20 fairness gain at a fraction of
the added connections.
"""

from __future__ import annotations

from repro.experiments.ablations import run_bucket0

BUCKET_ZERO_SIZES = (4, 8, 16, 20)


def test_bucket0(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_bucket0,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
            "bucket_zero_sizes": BUCKET_ZERO_SIZES,
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series[20]["f2"] < series[4]["f2"]
    assert series[20]["forwarded"] < series[4]["forwarded"]
