"""Benchmark + regeneration of Figure 6 (F1 Lorenz curves and Gini).

F1 relates total forwarded chunks to chunks served as the paid first
hop, over nodes that received payment. Asserted shape, as in the
paper: k=20 with 100 % originators is closest to full equity, k=4
with 20 % originators is the most uneven.
"""

from __future__ import annotations

from repro.experiments.paper import run_fig6


def test_fig6(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_fig6, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    gini = report.data["gini"]
    assert gini["k=20,share=1.0"] == min(gini.values())
    assert gini["k=4,share=0.2"] == max(gini.values())
