"""Extension benchmark: forwarding caches (paper §V).

"Adding content popularity and caching policies can also have an
impact ... due to the reduced number of forwarded requests." Runs on
the reference simulator (real stores and caches) under a Zipf
catalog; LRU/LFU must reduce total forwarded chunks versus no cache.
"""

from __future__ import annotations

from repro.experiments.ablations import run_caching


def test_caching(benchmark):
    report = benchmark.pedantic(
        run_caching,
        kwargs={"n_files": 150, "n_nodes": 200, "catalog_size": 40},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series["lru"]["cache_hits"] > 0
    assert series["lru"]["forwarded"] < series["none"]["forwarded"]
    assert series["lfu"]["forwarded"] < series["none"]["forwarded"]
