"""Extension benchmark: forwarding caches (paper §V).

"Adding content popularity and caching policies can also have an
impact ... due to the reduced number of forwarded requests." Runs on
the reference simulator (real stores and caches) under a Zipf
catalog; LRU/LFU must reduce total forwarded chunks versus no cache.
"""

from __future__ import annotations

from repro.experiments.ablations import run_caching


def test_caching(benchmark):
    report = benchmark.pedantic(
        run_caching,
        kwargs={"n_files": 150, "n_nodes": 200, "catalog_size": 40},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series["lru"]["cache_hits"] > 0
    assert series["lru"]["forwarded"] < series["none"]["forwarded"]
    assert series["lfu"]["forwarded"] < series["none"]["forwarded"]


def test_caching_fast(bench_scale):
    """The same §V effect on the vectorized backend at harness scale.

    The cached-chunk-mask model must reproduce the cache dividend —
    fewer forwarded chunks, shorter routes — at volumes the reference
    simulator cannot reach (paper scale via REPRO_BENCH_FILES/NODES).
    """
    from repro.experiments.ablations import run_caching_fast

    report = run_caching_fast(
        n_files=bench_scale["n_files"], n_nodes=bench_scale["n_nodes"],
        catalog_size=max(40, bench_scale["n_files"] // 10),
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series["on"]["cache_hits"] > 0
    assert series["on"]["forwarded"] < series["off"]["forwarded"]
    assert series["on"]["hops"] < series["off"]["hops"]
