"""Shared scale settings for the benchmark harness.

Benchmarks regenerate every table and figure of the paper at a
reduced default scale (300 nodes, 400 files) so the whole harness
completes in minutes; the paper-scale run (1000 nodes, 10 000 files)
is produced by ``python -m repro.cli run all`` and recorded in
EXPERIMENTS.md. Scale can be raised via environment variables::

    REPRO_BENCH_FILES=10000 REPRO_BENCH_NODES=1000 pytest benchmarks/
"""

from __future__ import annotations

import os

import pytest

BENCH_FILES = int(os.environ.get("REPRO_BENCH_FILES", "400"))
BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "300"))


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """(n_files, n_nodes) used by the artifact benchmarks."""
    return {"n_files": BENCH_FILES, "n_nodes": BENCH_NODES}
