"""Extension benchmark: misbehaving peers (paper §V, thread 2).

"What happens when some peers misbehave? ... What happens to F1 and
F2 properties?" Free-riding originators never settle their
zero-proximity payments; their first hops lose income and overall F2
inequality rises with the free-rider fraction.
"""

from __future__ import annotations

from repro.experiments.ablations import run_freeriders

FRACTIONS = (0.0, 0.1, 0.3, 0.5)


def test_freeriders(benchmark):
    report = benchmark.pedantic(
        run_freeriders,
        kwargs={"n_files": 150, "n_nodes": 200, "fractions": FRACTIONS},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series[0.0]["defaults"] == 0
    assert series[0.5]["defaults"] > series[0.1]["defaults"]
    assert series[0.5]["f2"] > series[0.0]["f2"]
