"""Benchmark + regeneration of the §VI headline numbers.

The paper's summary: switching the overlay from k=4 to k=20 reduces
the Gini coefficient by about 7 % for F2 and 6 % for F1. We print the
per-workload relative reductions and assert they are positive (k=20
fairer on both properties under both workloads).
"""

from __future__ import annotations

from repro.experiments.paper import run_headline


def test_headline(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_headline, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    reductions = report.data["reductions"]
    for prop in ("F1", "F2"):
        for value in reductions[prop]:
            assert value > 0.0, f"{prop} must improve with k=20"
