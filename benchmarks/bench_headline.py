"""Benchmark + regeneration of the §VI headline numbers.

The paper's summary: switching the overlay from k=4 to k=20 reduces
the Gini coefficient by about 7 % for F2 and 6 % for F1. We print the
per-workload relative reductions and assert they are positive (k=20
fairer on both properties under both workloads).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import FastSimulation, FastSimulationConfig
from repro.experiments.paper import run_headline


def test_headline(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_headline, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    reductions = report.data["reductions"]
    for prop in ("F1", "F2"):
        for value in reductions[prop]:
            assert value > 0.0, f"{prop} must improve with k=20"


def test_backend_throughput(bench_scale):
    """Before/after: the per-file loop vs the batched engine.

    Reports files/sec for both engines on the headline configuration
    at the harness scale and asserts they agree exactly on traffic.
    """
    config = FastSimulationConfig(
        n_files=bench_scale["n_files"], n_nodes=bench_scale["n_nodes"],
    )
    simulation = FastSimulation(config)
    _ = simulation.table.flat_coded  # build outside the timed region

    def best_of(runner, reps=3):
        times = []
        for _ in range(reps):
            started = time.perf_counter()
            result = runner()
            times.append(time.perf_counter() - started)
        return result, min(times)

    per_file, per_file_s = best_of(lambda: simulation.run(batched=False))
    batched, batched_s = best_of(lambda: simulation.run())
    print()
    print(
        f"per-file loop: {per_file_s:.3f}s "
        f"({config.n_files / per_file_s:,.0f} files/s)"
    )
    print(
        f"batched engine: {batched_s:.3f}s "
        f"({config.n_files / batched_s:,.0f} files/s)  "
        f"speedup {per_file_s / batched_s:.2f}x"
    )
    assert np.array_equal(per_file.forwarded, batched.forwarded)
    assert batched_s < per_file_s, "batched engine must win at bench scale"
