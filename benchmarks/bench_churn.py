"""Extension benchmark: availability under churn (paper §II motivation).

The paper's incentives exist partly to "decrease churn"; this
benchmark quantifies what churn costs under the paper's single-storer
placement: availability drops roughly with the offline fraction.
"""

from __future__ import annotations

from repro.experiments.extensions import run_churn


def test_churn(benchmark):
    report = benchmark.pedantic(
        run_churn,
        kwargs={"n_files": 150, "n_nodes": 200},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series["static"]["availability"] == 1.0
    assert series["churning"]["availability"] < 1.0
    # Availability cannot be much better than the live fraction under
    # single-storer placement.
    live = series["churning"]["live_fraction"]
    assert series["churning"]["availability"] < live + 0.25


def test_churn_fast(bench_scale):
    """Churn on the vectorized backend at harness scale.

    Availability must fall roughly with the offline fraction under
    single-storer placement, and storer recomputation (neighborhood
    re-replication) must claw most of it back.
    """
    from repro.experiments.extensions import run_churn_fast

    report = run_churn_fast(
        n_files=bench_scale["n_files"], n_nodes=bench_scale["n_nodes"],
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series[0.0]["availability"] == 1.0
    for fraction in (0.1, 0.3):
        row = series[fraction]
        assert row["availability"] < 1.0
        # Not much better than the live fraction under single storers.
        assert row["availability"] < (1.0 - fraction) + 0.25
        assert row["rereplicated_availability"] > row["availability"]
