"""Extension benchmark: availability under churn (paper §II motivation).

The paper's incentives exist partly to "decrease churn"; this
benchmark quantifies what churn costs under the paper's single-storer
placement: availability drops roughly with the offline fraction.
"""

from __future__ import annotations

from repro.experiments.extensions import run_churn


def test_churn(benchmark):
    report = benchmark.pedantic(
        run_churn,
        kwargs={"n_files": 150, "n_nodes": 200},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    assert series["static"]["availability"] == 1.0
    assert series["churning"]["availability"] < 1.0
    # Availability cannot be much better than the live fraction under
    # single-storer placement.
    live = series["churning"]["live_fraction"]
    assert series["churning"]["availability"] < live + 0.25
