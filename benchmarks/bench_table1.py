"""Benchmark + regeneration of Table I (average forwarded chunks).

Prints the same rows the paper reports: the 2x2 grid of average
forwarded chunks for k in {4, 20} x originators in {20 %, 100 %}.
The asserted *shape*: k=20 always forwards fewer chunks than k=4
(paper: 11356 vs 17253 at 20 % originators; 10904 vs 16048 at 100 %).
"""

from __future__ import annotations

from repro.experiments.paper import run_table1


def test_table1(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_table1, kwargs=bench_scale, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    grid = report.data["grid"]
    assert grid["k=20,share=0.2"] < grid["k=4,share=0.2"]
    assert grid["k=20,share=1.0"] < grid["k=4,share=1.0"]
    # Paper magnitude check: k=4 forwards roughly 1.25-1.8x more.
    ratio = grid["k=4,share=0.2"] / grid["k=20,share=0.2"]
    assert 1.1 < ratio < 2.5
