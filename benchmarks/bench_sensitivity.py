"""Robustness benchmark: the §VI headline numbers across seeds.

The paper's "7 % / 6 % Gini reduction" is a single-seed observation;
this benchmark replicates the k=4 vs k=20 comparison over paired
workload seeds and checks that the *direction* of the improvement is
seed-robust (its confidence interval excludes zero).
"""

from __future__ import annotations

from repro.experiments.extensions import run_sensitivity


def test_sensitivity(benchmark):
    report = benchmark.pedantic(
        run_sensitivity,
        kwargs={"n_files": 400, "n_nodes": 300, "n_replications": 5},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    outcomes = report.data["outcomes"]
    for prop in ("F1", "F2"):
        assert outcomes[prop]["mean_reduction"] > 0.0
        low, _high = outcomes[prop]["ci"]
        assert low > 0.0, f"{prop} improvement must be seed-robust"
