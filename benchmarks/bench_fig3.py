"""Benchmark + regeneration of Figure 3 (routing-table structure).

Rebuilds the paper's routing-table illustration for node 91 in an
8-bit space with k=4 and verifies its structural invariants: peers
sit in the bucket their proximity dictates, and the paper's worked
example (chunk at 245 -> bucket 0) holds on the live overlay.
"""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3


def test_fig3(benchmark):
    report = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.data["node"] == 91
    assert report.data["bucket_for_245"] == 0
