"""Ablation benchmark: fairness and bandwidth across bucket sizes.

Extends the paper's two-point comparison (k=4 vs k=20) to a sweep,
quantifying the §V trade-off: fairness and route length improve with
k while connection count (maintenance cost) grows.
"""

from __future__ import annotations

from repro.experiments.ablations import run_k_sweep

BUCKET_SIZES = (2, 4, 8, 16, 20)


def test_k_sweep(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_k_sweep,
        kwargs={
            "n_files": bench_scale["n_files"],
            "n_nodes": bench_scale["n_nodes"],
            "bucket_sizes": BUCKET_SIZES,
        },
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    series = report.data["series"]
    # Monotone trends across the sweep endpoints.
    assert series[20]["f2"] < series[2]["f2"]
    assert series[20]["hops"] < series[2]["hops"]
    assert series[20]["degree"] > series[2]["degree"]
