"""Scenario-layer benchmark: delta-patched epoch tables vs rebuilds.

Two claims are measured (and asserted, loosely enough for shared CI
runners):

1. **Delta beats rebuild** — re-homing storers after a churn epoch via
   :func:`~repro.kademlia.table.patch_storer_table` must beat the
   from-scratch :func:`~repro.kademlia.table.alive_storer_table`
   rebuild, while producing the identical table. The patch touches
   only the addresses whose storer actually left (plus one improvement
   pass per join), so the win grows as the churn rate shrinks.
2. **The epoch cache amortizes replicas** — replaying the same
   scenario schedule (what every extra sweep seed does) resolves all
   epoch tables from the :class:`~repro.perf.table_cache
   .EpochTableCache` without a single new patch or rebuild.

Runs as a pytest module (``pytest benchmarks/bench_scenarios.py``)
and as a script for the CI perf-smoke job::

    python benchmarks/bench_scenarios.py --quick
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

import numpy as np

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.fast import cached_overlay, clear_caches
from repro.kademlia.table import alive_storer_table, patch_storer_table
from repro.perf.table_cache import global_epoch_table_cache


def _measure_patch_vs_rebuild(n_nodes: int, bits: int, rate: float,
                              epochs: int, repeats: int = 3) -> dict:
    """Best-of-N timings for one churn schedule, both strategies."""
    config = FastSimulationConfig(n_nodes=n_nodes, bits=bits)
    overlay = cached_overlay(config.overlay_config())
    addresses = overlay.address_array()
    size = overlay.space.size
    dtype = np.uint16 if n_nodes < (1 << 14) else np.uint32
    base = alive_storer_table(
        addresses, np.ones(n_nodes, bool), np.dtype(dtype), size
    )

    rng = np.random.default_rng(2022)
    masks = [rng.random(n_nodes) >= rate for _ in range(epochs)]

    best_rebuild = best_patch = float("inf")
    patched_tables = rebuilt_tables = None
    for _ in range(repeats):
        started = time.perf_counter()
        rebuilt_tables = [
            alive_storer_table(addresses, mask, np.dtype(dtype), size)
            for mask in masks
        ]
        best_rebuild = min(best_rebuild, time.perf_counter() - started)

        started = time.perf_counter()
        patched_tables = []
        previous_mask = np.ones(n_nodes, bool)
        previous = base
        for mask in masks:
            leaves = np.flatnonzero(previous_mask & ~mask)
            joins = np.flatnonzero(~previous_mask & mask)
            previous = patch_storer_table(
                previous, addresses, mask, leaves, joins
            )
            patched_tables.append(previous)
            previous_mask = mask
        best_patch = min(best_patch, time.perf_counter() - started)

    for patched, rebuilt in zip(patched_tables, rebuilt_tables):
        assert np.array_equal(patched, rebuilt), (
            "delta patch diverged from the full rebuild"
        )
    return {
        "rebuild_seconds": best_rebuild,
        "patch_seconds": best_patch,
        "speedup": best_rebuild / max(best_patch, 1e-9),
    }


def _measure_replica_amortization(n_nodes: int, n_files: int,
                                  replicas: int = 3) -> dict:
    """Epoch-cache stats across repeated scenario replays."""
    clear_caches()
    spec = "churn:rate=0.1,recompute=true+caching:size=256"
    base = FastSimulationConfig(
        n_nodes=n_nodes, n_files=n_files, batch_files=64,
        catalog_size=200, originator_share=0.5, scenario=spec,
    )
    cache = global_epoch_table_cache()
    started = time.perf_counter()
    run_simulation(base)
    cold = time.perf_counter() - started
    cold_stats = cache.stats.snapshot()

    started = time.perf_counter()
    for replica in range(1, replicas):
        run_simulation(
            dataclasses.replace(base, workload_seed=7 + replica)
        )
    warm = (time.perf_counter() - started) / max(1, replicas - 1)
    warm_stats = cache.stats.snapshot()
    return {
        "scenario": spec,
        "cold_seconds": cold,
        "warm_seconds_per_replica": warm,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }


def test_patch_beats_rebuild(bench_scale):
    report = _measure_patch_vs_rebuild(
        n_nodes=bench_scale["n_nodes"], bits=16, rate=0.1, epochs=6,
    )
    print()
    print(
        f"storer tables, 6 epochs @ 10% churn: rebuild "
        f"{report['rebuild_seconds'] * 1e3:.1f}ms, patch "
        f"{report['patch_seconds'] * 1e3:.1f}ms "
        f"({report['speedup']:.1f}x)"
    )
    # Loose bound for shared runners; locally the win is ~3-10x.
    assert report["patch_seconds"] < report["rebuild_seconds"], (
        "the delta patch must beat the full per-epoch rebuild"
    )


def test_epoch_cache_amortizes_replicas(bench_scale):
    report = _measure_replica_amortization(
        n_nodes=bench_scale["n_nodes"],
        n_files=min(bench_scale["n_files"], 512),
    )
    cold, warm = report["cold_stats"], report["warm_stats"]
    print()
    print(
        f"{report['scenario']}: cold run {report['cold_seconds']:.2f}s "
        f"({cold['patches']} patches, {cold['rebuilds']} rebuilds), "
        f"warm replica {report['warm_seconds_per_replica']:.2f}s "
        f"(+{warm['hits'] - cold['hits']} hits)"
    )
    assert cold["patches"] + cold["rebuilds"] > 0
    assert warm["patches"] == cold["patches"], (
        "extra replicas must not patch any epoch table again"
    )
    assert warm["rebuilds"] == cold["rebuilds"]
    assert warm["hits"] > cold["hits"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scenario-layer benchmark (delta vs rebuild)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale (300 nodes, 14-bit space) instead of paper scale",
    )
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--rate", type=float, default=0.1)
    args = parser.parse_args(argv)

    n_nodes = 300 if args.quick else 1000
    bits = 14 if args.quick else 16
    n_files = 256 if args.quick else 2000

    report = _measure_patch_vs_rebuild(
        n_nodes=n_nodes, bits=bits, rate=args.rate, epochs=args.epochs,
    )
    print(
        f"epoch storer tables ({n_nodes} nodes, {bits}-bit space, "
        f"{args.epochs} epochs @ {args.rate:.0%} churn): rebuild "
        f"{report['rebuild_seconds'] * 1e3:.1f}ms, delta patch "
        f"{report['patch_seconds'] * 1e3:.1f}ms -> "
        f"{report['speedup']:.1f}x"
    )
    if report["patch_seconds"] >= report["rebuild_seconds"]:
        print("FAIL: delta patch did not beat the full rebuild",
              file=sys.stderr)
        return 1

    amortized = _measure_replica_amortization(
        n_nodes=n_nodes, n_files=n_files
    )
    cold, warm = amortized["cold_stats"], amortized["warm_stats"]
    print(
        f"{amortized['scenario']}: cold {amortized['cold_seconds']:.2f}s "
        f"({cold['patches']} patches), warm replica "
        f"{amortized['warm_seconds_per_replica']:.2f}s "
        f"(+{warm['hits'] - cold['hits']} cache hits, 0 new patches)"
    )
    if warm["patches"] != cold["patches"] or warm["rebuilds"] != cold["rebuilds"]:
        print("FAIL: replica replay recomputed epoch tables",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
