"""The time-domain backend: equivalence oracle and the fluid wheel.

The acceptance oracle for the ``time`` backend is that with unbounded
bandwidth its hop-count projection (per-node forwarded / first-hop
counters, hop histogram, income) is **bit-identical** to the fast
backend — on the canonical golden configuration, on every frozen
scenario fixture, and on composed scenario stacks. The wheel tests
then pin the timing semantics: propagation floors, fair-share
slowdowns, quantum batching, concurrency caps, and determinism.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.backends import get_backend, run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.timed import FluidWheel, TimedSimulation
from repro.errors import ConfigurationError

from .test_golden import GOLDEN_CONFIG, GOLDEN_DIR, golden_payload
from .test_golden_scenarios import (
    SCENARIO_GOLDEN_CONFIGS,
    scenario_payload,
)

EXACT_ATTRS = ("forwarded", "first_hop", "income", "expenditure")
COUNTERS = ("files", "chunks", "total_hops", "local_hits", "fallbacks",
            "cache_hits", "unavailable")


def assert_matches_fast(config: FastSimulationConfig) -> None:
    fast = get_backend("fast").prepare(config).run()
    timed = get_backend("time").prepare(config).run()
    for attr in EXACT_ATTRS:
        assert np.array_equal(getattr(fast, attr), getattr(timed, attr)), attr
    for attr in COUNTERS:
        assert getattr(fast, attr) == getattr(timed, attr), attr
    assert fast.hop_histogram == timed.hop_histogram
    # Every retrieved chunk produced exactly one latency sample.
    assert timed.latency_ms is not None
    assert timed.latency_ms.size == timed.chunks - timed.unavailable


class TestEquivalenceOracle:
    def test_matches_fast_on_golden_config(self):
        assert_matches_fast(GOLDEN_CONFIG)

    @pytest.mark.parametrize("name", sorted(SCENARIO_GOLDEN_CONFIGS))
    def test_matches_fast_on_scenario_configs(self, name):
        assert_matches_fast(SCENARIO_GOLDEN_CONFIGS[name])

    def test_matches_golden_fixture(self):
        result = run_simulation(GOLDEN_CONFIG, backend="time")
        frozen = json.loads((GOLDEN_DIR / "fast.json").read_text())
        assert golden_payload(result) == frozen

    @pytest.mark.parametrize("name", sorted(SCENARIO_GOLDEN_CONFIGS))
    def test_matches_scenario_golden_fixtures(self, name):
        result = run_simulation(
            SCENARIO_GOLDEN_CONFIGS[name], backend="time"
        )
        frozen = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert scenario_payload(result) == frozen

    def test_matches_fast_on_composed_scenario(self):
        assert_matches_fast(dataclasses.replace(
            GOLDEN_CONFIG,
            batch_files=8,
            scenario=("churn:rate=0.2,recompute=true+caching"
                      "+freeriding:fraction=0.2"),
        ))

    def test_time_fields_do_not_perturb_routing(self):
        # Timing parameters only affect the clock, never who forwards.
        timeless = get_backend("fast").prepare(GOLDEN_CONFIG).run()
        timed = get_backend("time").prepare(dataclasses.replace(
            GOLDEN_CONFIG, hop_latency_ms=25.0, node_up_mbps=8.0,
            node_down_mbps=8.0, max_concurrent=3, arrival_rate=100.0,
            time_quantum_ms=5.0,
        )).run()
        for attr in EXACT_ATTRS:
            assert np.array_equal(
                getattr(timeless, attr), getattr(timed, attr)
            ), attr
        assert timeless.hop_histogram == timed.hop_histogram


class TestTimingSemantics:
    def test_pure_propagation_matches_hop_histogram(self):
        # Unbounded bandwidth: latency is exactly 2 * hops * delay,
        # so the sample distribution IS the hop histogram rescaled.
        config = dataclasses.replace(GOLDEN_CONFIG, hop_latency_ms=30.0)
        result = get_backend("time").prepare(config).run()
        values, counts = np.unique(result.latency_ms, return_counts=True)
        expected = {
            2.0 * hops * 30.0: count
            for hops, count in result.hop_histogram.items()
        }
        assert dict(zip(values.tolist(), counts.tolist())) == expected

    def test_zero_latency_without_time_parameters(self):
        result = get_backend("time").prepare(GOLDEN_CONFIG).run()
        assert np.all(result.latency_ms == 0.0)

    def test_finite_bandwidth_only_adds_latency(self):
        base = dataclasses.replace(GOLDEN_CONFIG, hop_latency_ms=30.0)
        free = get_backend("time").prepare(base).run()
        contended = get_backend("time").prepare(dataclasses.replace(
            base, node_up_mbps=10.0, node_down_mbps=10.0,
        )).run()
        assert np.all(np.sort(contended.latency_ms)
                      >= np.sort(free.latency_ms) - 1e-9)
        assert contended.latency_ms.sum() > free.latency_ms.sum()

    def test_propagation_floor_holds_under_contention(self):
        config = dataclasses.replace(
            GOLDEN_CONFIG, hop_latency_ms=30.0, node_up_mbps=5.0,
            node_down_mbps=5.0, max_concurrent=2, arrival_rate=50.0,
        )
        result = get_backend("time").prepare(config).run()
        routed = result.latency_ms[result.latency_ms > 0]
        assert routed.size
        assert routed.min() >= 2 * 30.0 - 1e-9

    def test_quantum_bounds_latency_error(self):
        base = dataclasses.replace(
            GOLDEN_CONFIG, hop_latency_ms=10.0, node_up_mbps=10.0,
            node_down_mbps=10.0, arrival_rate=100.0,
        )
        exact = get_backend("time").prepare(base).run()
        slotted = get_backend("time").prepare(dataclasses.replace(
            base, time_quantum_ms=5.0,
        )).run()
        # Slots only ever defer completions, by less than one quantum
        # per data hop.
        delta = np.sort(slotted.latency_ms) - np.sort(exact.latency_ms)
        assert np.all(delta >= -1e-6)
        max_hops = max(exact.hop_histogram)
        assert np.all(delta <= 5.0 * max_hops + 1e-6)

    def test_arrival_process_is_seeded(self):
        config = dataclasses.replace(
            GOLDEN_CONFIG, hop_latency_ms=20.0, node_up_mbps=10.0,
            node_down_mbps=10.0, arrival_rate=25.0,
        )
        first = get_backend("time").prepare(config).run()
        again = get_backend("time").prepare(config).run()
        assert np.array_equal(first.latency_ms, again.latency_ms)
        other = get_backend("time").prepare(dataclasses.replace(
            config, arrival_seed=1234,
        )).run()
        assert not np.array_equal(first.latency_ms, other.latency_ms)

    def test_spread_arrivals_reduce_contention(self):
        burst = dataclasses.replace(
            GOLDEN_CONFIG, hop_latency_ms=30.0, node_up_mbps=5.0,
            node_down_mbps=5.0,
        )
        spread = dataclasses.replace(burst, arrival_rate=5.0)
        burst_p95 = get_backend("time").prepare(burst).run()
        spread_p95 = get_backend("time").prepare(spread).run()
        assert (spread_p95.latency_stats().p95_ms
                <= burst_p95.latency_stats().p95_ms)

    def test_latency_stats_requires_time_backend(self):
        result = get_backend("fast").prepare(GOLDEN_CONFIG).run()
        with pytest.raises(ConfigurationError):
            result.latency_stats()


class TestFluidWheel:
    def _single_chain(self, *, up=0.0, down=0.0, cap=0, quantum=0.0,
                      releases=(0.0,), n_chunks=1):
        """n_chunks chunks sharing one 2-hop path 2 -> 1, origin 0."""
        hops = np.full(n_chunks, 2, dtype=np.int32)
        offsets = np.arange(n_chunks, dtype=np.int64) * 2
        nodes = np.tile(np.array([1, 2], dtype=np.int32), n_chunks)
        return FluidWheel(
            n_nodes=3, chunk_bytes=1000.0, up_bytes_s=up,
            down_bytes_s=down, max_concurrent=cap, quantum_s=quantum,
            release_s=np.asarray(releases, dtype=np.float64),
            hops=hops, offsets=offsets, nodes=nodes,
            origins=np.zeros(n_chunks, dtype=np.int64),
        )

    def test_single_transfer_takes_bytes_over_rate(self):
        # 1000 bytes over min(2000 up, 1000 down) B/s per hop = 1s,
        # two data hops (storer -> relay -> origin) = 2s.
        wheel = self._single_chain(up=2000.0, down=1000.0)
        done = wheel.run()
        assert done == pytest.approx([2.0])

    def test_fair_share_halves_rate(self):
        # Two chunks leave the same storer simultaneously: its uplink
        # is split, so the first data hop takes 2s instead of 1s; the
        # second hops overlap the same way.
        wheel = self._single_chain(up=1000.0, n_chunks=2,
                                   releases=(0.0, 0.0))
        done = wheel.run()
        assert done == pytest.approx([4.0, 4.0])

    def test_concurrency_cap_serializes_transfers(self):
        # cap=1 with instantaneous links: transfers still finish in
        # zero time, so the cap alone leaves completion at release.
        wheel = self._single_chain(cap=1, n_chunks=2, releases=(0.0, 1.0))
        done = wheel.run()
        assert done == pytest.approx([0.0, 1.0])

    def test_cap_queues_fifo_per_sender(self):
        # Finite bandwidth + cap=1: the second chunk's first hop waits
        # for the first to release the storer's single slot.
        wheel = self._single_chain(up=1000.0, cap=1, n_chunks=2,
                                   releases=(0.0, 0.0))
        done = wheel.run()
        assert sorted(done.tolist()) == pytest.approx([2.0, 3.0])

    def test_quantum_rounds_completions_up(self):
        wheel = self._single_chain(up=1000.0, quantum=0.3)
        done = wheel.run()
        # Each 1s hop is deferred to the next 0.3s slot boundary.
        assert done == pytest.approx([2.4])

    def test_empty_wheel(self):
        wheel = self._single_chain(n_chunks=0, releases=())
        assert wheel.run().size == 0


class TestPaths:
    def test_recorded_paths_are_consistent(self):
        simulation = TimedSimulation(GOLDEN_CONFIG)
        fast = simulation._fast
        workload = GOLDEN_CONFIG.workload()
        file_origins, sizes, targets = fast._flatten_workload(workload)
        result = get_backend("time").prepare(GOLDEN_CONFIG).run()
        # Total recorded path length equals total network hops.
        from repro.backends.timed import _PathRecorder

        recorder = _PathRecorder(int(targets.size))
        origins = np.repeat(file_origins, sizes)
        ids = np.arange(targets.size, dtype=np.int64)
        scratch = type(result)(
            config=GOLDEN_CONFIG,
            node_addresses=result.node_addresses,
            forwarded=np.zeros(result.n_nodes, dtype=np.int64),
            first_hop=np.zeros(result.n_nodes, dtype=np.int64),
            income=np.zeros(result.n_nodes),
            expenditure=np.zeros(result.n_nodes),
        )
        simulation._record_route_batch(origins, targets, ids, scratch,
                                       recorder=recorder)
        paths = recorder.assemble()
        assert int(paths.hops.sum()) == result.total_hops
        assert paths.zero_ids.size == result.local_hits
        # Every recorded node index is a valid dense node.
        assert paths.nodes.min() >= 0
        assert paths.nodes.max() < GOLDEN_CONFIG.n_nodes
        # Routed + local = retrieved.
        assert (paths.routed_ids.size + paths.zero_ids.size
                == result.chunks - result.unavailable)
