"""Streaming-vs-batch bit-identity over the golden configurations.

The streaming refactor's acceptance bar: feeding a workload through
``run_stream`` in micro-batches must reproduce the one-shot batch
run *exactly* — every scalar counter, every per-node vector (including
the float income/expenditure, which stay exact because chunk prices
are dyadic rationals), every hop-histogram bucket — on the static
golden configuration and all four scenario goldens, for both the fast
kernel and the time-domain recorder.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.backends.config import FastSimulationConfig
from repro.backends.fast import FastSimulation, StreamSession
from repro.backends.timed import TimedSimulation
from repro.errors import ConfigurationError
from repro.workloads.streams import GeneratorStream

from .test_golden import GOLDEN_CONFIG
from .test_golden_scenarios import SCENARIO_GOLDEN_CONFIGS

ALL_CONFIGS = {"static": GOLDEN_CONFIG, **SCENARIO_GOLDEN_CONFIGS}


def assert_identical(batch, streamed) -> None:
    """Every counter, vector and histogram bucket must match exactly."""
    assert streamed.files == batch.files
    assert streamed.chunks == batch.chunks
    assert streamed.total_hops == batch.total_hops
    assert streamed.local_hits == batch.local_hits
    assert streamed.fallbacks == batch.fallbacks
    assert streamed.cache_hits == batch.cache_hits
    assert streamed.unavailable == batch.unavailable
    assert dict(streamed.hop_histogram) == dict(batch.hop_histogram)
    np.testing.assert_array_equal(streamed.node_addresses,
                                  batch.node_addresses)
    np.testing.assert_array_equal(streamed.forwarded, batch.forwarded)
    np.testing.assert_array_equal(streamed.first_hop, batch.first_hop)
    # Exact float equality is intentional: dyadic prices sum without
    # rounding, so streaming must not perturb a single bit.
    np.testing.assert_array_equal(streamed.income, batch.income)
    np.testing.assert_array_equal(streamed.expenditure,
                                  batch.expenditure)


def stream_run(config: FastSimulationConfig, *, max_batch: int,
               simulation_cls=FastSimulation):
    """Run *config*'s workload through the streaming path."""
    simulation = simulation_cls(config)
    overlay = simulation.overlay
    stream = GeneratorStream(config.workload(), max_batch=max_batch)
    n_epochs = None
    if config.scenario_stack() is not None:
        n_epochs = math.ceil(config.n_files / config.batch_files)
    return simulation.run_stream(
        stream.batches(overlay.address_array(), simulation.space),
        n_epochs=n_epochs,
    )


class TestFastStreaming:
    @pytest.mark.parametrize("name", sorted(ALL_CONFIGS))
    def test_bit_identical_to_batch(self, name):
        """Slab-sized micro-batches reproduce the batch run exactly."""
        config = ALL_CONFIGS[name]
        batch = FastSimulation(config).run()
        streamed = stream_run(config, max_batch=config.batch_files)
        assert_identical(batch, streamed)

    @pytest.mark.parametrize("max_batch", [1, 7, 1000])
    def test_static_any_batch_size(self, max_batch):
        """Static routing is per-chunk independent: any split is exact."""
        batch = FastSimulation(GOLDEN_CONFIG).run()
        streamed = stream_run(GOLDEN_CONFIG, max_batch=max_batch)
        assert_identical(batch, streamed)

    def test_decoded_reference_mode_streams(self, monkeypatch):
        """The decoded dynamics mode streams bit-identically too."""
        monkeypatch.setenv("REPRO_DECODED_DYNAMICS", "1")
        config = SCENARIO_GOLDEN_CONFIGS["scenario_churn"]
        batch = FastSimulation(config).run()
        streamed = stream_run(config, max_batch=config.batch_files)
        assert_identical(batch, streamed)

    def test_repeated_streams_are_stable(self):
        """Session state fully restores: a second stream matches."""
        config = SCENARIO_GOLDEN_CONFIGS["scenario_churn_caching"]
        first = stream_run(config, max_batch=config.batch_files)
        second = stream_run(config, max_batch=config.batch_files)
        assert_identical(first, second)


class TestTimedStreaming:
    @pytest.mark.parametrize(
        "name", ["static", "scenario_churn", "scenario_churn_caching"]
    )
    def test_bit_identical_to_batch(self, name):
        """Counters AND latency samples survive streaming exactly."""
        config = dataclasses.replace(
            ALL_CONFIGS[name], arrival_rate=50.0
        )
        batch = TimedSimulation(config).run()
        streamed = stream_run(
            config, max_batch=config.batch_files,
            simulation_cls=TimedSimulation,
        )
        assert_identical(batch, streamed)
        np.testing.assert_array_equal(
            np.sort(streamed.latency_ms), np.sort(batch.latency_ms)
        )

    def test_contended_wheel_bit_identical(self):
        """Finite bandwidth + concurrency caps stream exactly too."""
        config = dataclasses.replace(
            GOLDEN_CONFIG, arrival_rate=50.0, node_up_mbps=10.0,
            node_down_mbps=20.0, max_concurrent=4,
        )
        batch = TimedSimulation(config).run()
        streamed = stream_run(
            config, max_batch=7, simulation_cls=TimedSimulation,
        )
        assert_identical(batch, streamed)
        np.testing.assert_array_equal(
            np.sort(streamed.latency_ms), np.sort(batch.latency_ms)
        )


class TestStreamSession:
    def test_scenario_needs_epoch_count(self):
        config = SCENARIO_GOLDEN_CONFIGS["scenario_churn"]
        with pytest.raises(ConfigurationError, match="epoch count"):
            StreamSession(FastSimulation(config))

    def test_overfeeding_a_sized_session_fails(self):
        config = SCENARIO_GOLDEN_CONFIGS["scenario_churn"]
        simulation = FastSimulation(config)
        origins = np.zeros(3, dtype=simulation.table.entry_dtype)
        targets = np.array([1, 2, 3], dtype=np.uint16)
        with StreamSession(simulation, n_epochs=1) as session:
            session.feed(origins, targets)
            with pytest.raises(ConfigurationError, match="sized for"):
                session.feed(origins, targets)

    def test_closed_session_refuses_feeds(self):
        simulation = FastSimulation(GOLDEN_CONFIG)
        session = StreamSession(simulation)
        session.close()
        with pytest.raises(ConfigurationError, match="closed"):
            session.feed(
                np.zeros(1, dtype=simulation.table.entry_dtype),
                np.array([5], dtype=np.uint16),
            )

    def test_close_is_idempotent(self):
        config = SCENARIO_GOLDEN_CONFIGS["scenario_churn"]
        session = StreamSession(FastSimulation(config), n_epochs=4)
        session.close()
        session.close()

    def test_feed_into_scratch_results_sums_to_batch(self):
        """Per-epoch scratch results (the serve pattern) sum exactly."""
        config = GOLDEN_CONFIG
        simulation = FastSimulation(config)
        batch = FastSimulation(config).run()
        stream = GeneratorStream(config.workload(), max_batch=8)
        total = simulation.new_result()
        with StreamSession(simulation) as session:
            for events in stream.batches(
                simulation.overlay.address_array(), simulation.space
            ):
                scratch = simulation.new_result()
                file_origins, sizes, targets = (
                    simulation.flatten_events(events)
                )
                scratch.files += len(sizes)
                session.feed(np.repeat(file_origins, sizes), targets,
                             into=scratch)
                total.files += scratch.files
                total.chunks += scratch.chunks
                total.total_hops += scratch.total_hops
                total.local_hits += scratch.local_hits
                total.fallbacks += scratch.fallbacks
                total.forwarded += scratch.forwarded
                total.first_hop += scratch.first_hop
                total.income += scratch.income
                total.expenditure += scratch.expenditure
                for hops, count in scratch.hop_histogram.items():
                    total.hop_histogram[hops] = (
                        total.hop_histogram.get(hops, 0) + count
                    )
        assert_identical(batch, total)
