"""Golden fixtures for the scenario (churn/caching) simulation paths.

``tests/backends/test_golden.py`` pins the static routing semantics;
this module pins the *dynamic* ones: per-epoch churn alive-masks (with
and without storer recomputation), the path-caching mask, and the two
combined. The fixtures were generated from the pre-unification forked
kernels (``_route_waves_churn`` / ``_serve_from_cache``), so the
single epoch-segmented kernel that replaced them is provably
bit-identical — any counter, histogram bucket, or per-node vector that
moves fails these exact comparisons. A deliberate semantic change
refreshes them with ``pytest --update-golden``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.result import SimulationResult

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Shared shape: small enough to regenerate in seconds, multi-epoch
#: (30 files / 8-file batches = 4 epochs) so alive masks and the cache
#: mask actually evolve, and enough files that churn drops some chunks
#: without emptying any epoch.
_BASE = dict(
    n_nodes=120,
    bits=12,
    bucket_size=4,
    originator_share=0.5,
    n_files=30,
    file_min=4,
    file_max=12,
    overlay_seed=42,
    workload_seed=7,
    batch_files=8,
)

SCENARIO_GOLDEN_CONFIGS: dict[str, FastSimulationConfig] = {
    "scenario_churn": FastSimulationConfig(
        **_BASE, churn_offline_fraction=0.2,
    ),
    "scenario_churn_recompute": FastSimulationConfig(
        **_BASE, churn_offline_fraction=0.3, churn_recompute_storers=True,
    ),
    "scenario_caching": FastSimulationConfig(
        **_BASE, caching=True, catalog_size=20,
    ),
    "scenario_churn_caching": FastSimulationConfig(
        **_BASE, churn_offline_fraction=0.2, caching=True, catalog_size=20,
    ),
}


def scenario_payload(result: SimulationResult) -> dict:
    """The JSON-able frozen form of one scenario simulation result."""
    return {
        "config": {
            "churn_offline_fraction": result.config.churn_offline_fraction,
            "churn_recompute_storers": result.config.churn_recompute_storers,
            "churn_seed": result.config.churn_seed,
            "caching": result.config.caching,
            "catalog_size": result.config.catalog_size,
            "batch_files": result.config.batch_files,
            "n_files": result.config.n_files,
            "n_nodes": result.config.n_nodes,
            "workload_seed": result.config.workload_seed,
        },
        "counters": {
            "files": result.files,
            "chunks": result.chunks,
            "total_hops": result.total_hops,
            "local_hits": result.local_hits,
            "fallbacks": result.fallbacks,
            "cache_hits": result.cache_hits,
            "unavailable": result.unavailable,
        },
        "hop_histogram": {
            str(h): c for h, c in sorted(result.hop_histogram.items())
        },
        "forwarded": [int(v) for v in result.forwarded],
        "first_hop": [int(v) for v in result.first_hop],
        "income": [float(v) for v in result.income],
        "expenditure": [float(v) for v in result.expenditure],
    }


@pytest.mark.parametrize("name", sorted(SCENARIO_GOLDEN_CONFIGS))
def test_scenario_matches_golden(name: str, update_golden: bool):
    result = run_simulation(SCENARIO_GOLDEN_CONFIGS[name])
    payload = scenario_payload(result)
    path = GOLDEN_DIR / f"{name}.json"

    if update_golden:
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest --update-golden"
    )
    golden = json.loads(path.read_text())

    assert payload["config"] == golden["config"]
    # Integer traffic and availability counters must match exactly:
    # the kernel unification claims bit-identity, not similarity.
    assert payload["counters"] == golden["counters"]
    assert payload["hop_histogram"] == golden["hop_histogram"]
    assert payload["forwarded"] == golden["forwarded"]
    assert payload["first_hop"] == golden["first_hop"]
    np.testing.assert_allclose(
        payload["income"], golden["income"], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        payload["expenditure"], golden["expenditure"], rtol=1e-9,
        atol=1e-12,
    )


def test_scenario_goldens_are_dynamic():
    """The frozen runs actually exercised the dynamics they pin."""
    churn = json.loads((GOLDEN_DIR / "scenario_churn.json").read_text())
    assert churn["counters"]["unavailable"] > 0
    recompute = json.loads(
        (GOLDEN_DIR / "scenario_churn_recompute.json").read_text()
    )
    assert (recompute["counters"]["unavailable"]
            < recompute["counters"]["chunks"])
    caching = json.loads((GOLDEN_DIR / "scenario_caching.json").read_text())
    assert caching["counters"]["cache_hits"] > 0
    combined = json.loads(
        (GOLDEN_DIR / "scenario_churn_caching.json").read_text()
    )
    assert combined["counters"]["cache_hits"] > 0
    assert combined["counters"]["unavailable"] > 0
