"""Compact-dtype policy: selection, capacity validation, kernel state.

The hop kernel stores table entries, storers, targets, and wave state
in the smallest sufficient unsigned dtype, with the dtype's maximum
value reserved as the greedy-terminal sentinel. These tests pin the
selection rules, the refuse-don't-wrap capacity checks, and that the
compact representation is what actually reaches the arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.fast import (
    FastSimulation,
    FastSimulationConfig,
    NextHopTable,
    clear_caches,
    table_entry_dtype,
    target_dtype,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


class TestEntryDtypeSelection:
    def test_small_networks_use_uint16(self):
        assert table_entry_dtype(2) == np.dtype(np.uint16)
        assert table_entry_dtype(1000) == np.dtype(np.uint16)
        # 16383 is the largest population whose coded bands (stored up
        # to 3n - 1, transient local band up to 4n - 1) stay clear of
        # the uint16 sentinel (65535).
        assert table_entry_dtype(16383) == np.dtype(np.uint16)

    def test_coded_bands_never_reach_the_sentinel(self):
        assert table_entry_dtype(16384) == np.dtype(np.uint32)
        assert table_entry_dtype(65535) == np.dtype(np.uint32)
        assert table_entry_dtype(1 << 22) == np.dtype(np.uint32)

    def test_capacity_overflow_raises_instead_of_wrapping(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            table_entry_dtype((1 << 32) - 1)
        with pytest.raises(ConfigurationError, match="exceeds"):
            table_entry_dtype(1 << 40)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            table_entry_dtype(0)


class TestTargetDtypeSelection:
    def test_spaces_up_to_16_bits_use_uint16(self):
        assert target_dtype(8) == np.dtype(np.uint16)
        assert target_dtype(12) == np.dtype(np.uint16)
        assert target_dtype(16) == np.dtype(np.uint16)

    def test_wider_spaces_use_uint32(self):
        assert target_dtype(17) == np.dtype(np.uint32)
        assert target_dtype(22) == np.dtype(np.uint32)
        assert target_dtype(32) == np.dtype(np.uint32)

    def test_overflow_and_nonsense_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            target_dtype(33)
        with pytest.raises(ConfigurationError, match=">= 1"):
            target_dtype(0)


class TestTableRepresentation:
    def test_table_arrays_are_compact(self, small_overlay):
        table = NextHopTable(small_overlay)
        assert table.next_hop.dtype == np.dtype(np.uint16)
        assert table.storer.dtype == np.dtype(np.uint16)
        assert table.entry_dtype == np.dtype(np.uint16)
        assert table.sentinel == np.iinfo(np.uint16).max

    def test_entries_are_valid_indices_or_sentinel(self, small_overlay):
        table = NextHopTable(small_overlay)
        n = len(small_overlay)
        entries = table.next_hop
        valid = entries < n
        sentinel = entries == table.sentinel
        assert bool(np.all(valid | sentinel))
        # Greedy must terminate somewhere: sentinels exist (each node
        # is its own terminal for targets it is closest to among its
        # view), but cannot be everything.
        assert 0 < int(sentinel.sum()) < entries.size

    def test_flat_coded_is_a_view(self, small_overlay):
        table = NextHopTable(small_overlay)
        assert table.flat_coded.base is table.coded_transposed
        assert np.array_equal(
            table.flat_coded.reshape(table.coded_transposed.shape),
            table.coded_transposed,
        )

    def test_coded_bands_encode_terminals(self, small_overlay):
        table = NextHopTable(small_overlay)
        n = len(small_overlay)
        coded = table.coded_transposed
        raw = table.next_hop.T
        forwarding = coded < n
        arrived = (coded >= n) & (coded < 2 * n)
        stalled = coded >= 2 * n
        assert bool(np.all(forwarding | arrived | stalled))
        assert int(coded.max()) < 3 * n
        # Forwarding band: coded value IS the raw next hop.
        assert np.array_equal(coded[forwarding], raw[forwarding])
        # Arrival band: raw next hop was the storer.
        storer_grid = np.broadcast_to(table.storer[:, None], coded.shape)
        assert np.array_equal(
            coded[arrived] - n, storer_grid[arrived]
        )
        assert np.array_equal(raw[arrived], storer_grid[arrived])
        # Stall band: raw was the sentinel; coded falls back to storer.
        assert bool(np.all(raw[stalled] == table.sentinel))
        assert np.array_equal(
            coded[stalled] - 2 * n, storer_grid[stalled]
        )

    def test_storer_idx_is_an_alias_not_a_copy(self, small_overlay):
        table = NextHopTable(small_overlay)
        assert table.storer_idx is table.storer


class TestWorkloadDtypes:
    def test_flattened_workload_is_compact(self):
        config = FastSimulationConfig(
            n_nodes=80, bits=10, n_files=20, file_min=4, file_max=8,
            overlay_seed=3, workload_seed=9,
        )
        simulation = FastSimulation(config)
        origins, sizes, targets = simulation._flatten_workload(
            config.workload()
        )
        assert origins.dtype == np.dtype(np.uint16)
        assert targets.dtype == np.dtype(np.uint16)
        assert sizes.dtype == np.dtype(np.int64)
        assert int(targets.max()) < simulation.space.size

    def test_result_vectors_keep_their_public_dtypes(self):
        config = FastSimulationConfig(
            n_nodes=80, bits=10, n_files=20, file_min=4, file_max=8,
            overlay_seed=3, workload_seed=9,
        )
        result = FastSimulation(config).run()
        assert result.forwarded.dtype == np.dtype(np.int64)
        assert result.first_hop.dtype == np.dtype(np.int64)
        assert result.income.dtype == np.dtype(np.float64)
        assert result.node_addresses.dtype == np.dtype(np.int64)
