"""Golden-result regression harness.

Freezes small-scale canonical simulation results — per-node forwarded
and first-hop counters, income/expenditure vectors, and the paper's
fairness metrics — for the ``fast``, ``fast-perfile``, and
``reference`` backends at fixed seeds under ``tests/golden/``. Any
refactor that changes simulation *semantics* (routing decisions,
pricing, accounting) breaks these exact comparisons; a deliberate
semantic change refreshes them with::

    pytest tests/backends/test_golden.py --update-golden

and the fixture diff documents exactly what moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.result import SimulationResult

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: The canonical frozen configuration: small enough for the reference
#: simulator, non-trivial enough to exercise multi-hop routing,
#: fallbacks, and the full SWAP accounting.
GOLDEN_CONFIG = FastSimulationConfig(
    n_nodes=120,
    bits=12,
    bucket_size=4,
    originator_share=1.0,
    n_files=30,
    file_min=4,
    file_max=12,
    overlay_seed=42,
    workload_seed=7,
)

GOLDEN_BACKENDS = ("fast", "fast-perfile", "reference")


def golden_payload(result: SimulationResult) -> dict:
    """The JSON-able frozen form of one simulation result."""
    return {
        "config": {
            "n_nodes": result.config.n_nodes,
            "bits": result.config.bits,
            "bucket_size": result.config.bucket_size,
            "originator_share": result.config.originator_share,
            "n_files": result.config.n_files,
            "file_min": result.config.file_min,
            "file_max": result.config.file_max,
            "overlay_seed": result.config.overlay_seed,
            "workload_seed": result.config.workload_seed,
        },
        "counters": {
            "files": result.files,
            "chunks": result.chunks,
            "total_hops": result.total_hops,
            "local_hits": result.local_hits,
            "fallbacks": result.fallbacks,
        },
        "hop_histogram": {
            str(h): c for h, c in sorted(result.hop_histogram.items())
        },
        "metrics": {
            "mean_hops": result.mean_hops,
            "mean_forwarded": result.average_forwarded_chunks(),
            "f2_gini": result.f2_gini(),
            "f1_gini": result.f1_gini(),
        },
        "node_addresses": [int(a) for a in result.node_addresses],
        "forwarded": [int(v) for v in result.forwarded],
        "first_hop": [int(v) for v in result.first_hop],
        "income": [float(v) for v in result.income],
        "expenditure": [float(v) for v in result.expenditure],
    }


@pytest.mark.parametrize("backend", GOLDEN_BACKENDS)
def test_backend_matches_golden(backend: str, update_golden: bool):
    result = run_simulation(GOLDEN_CONFIG, backend=backend)
    payload = golden_payload(result)
    path = GOLDEN_DIR / f"{backend.replace('-', '_')}.json"

    if update_golden:
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest --update-golden"
    )
    golden = json.loads(path.read_text())

    assert payload["config"] == golden["config"]
    assert payload["counters"] == golden["counters"]
    assert payload["hop_histogram"] == golden["hop_histogram"]
    assert payload["node_addresses"] == golden["node_addresses"]
    # Integer traffic counters must match exactly; semantic drift in
    # routing shows up here first.
    assert payload["forwarded"] == golden["forwarded"]
    assert payload["first_hop"] == golden["first_hop"]
    # Accounting vectors and derived metrics: tight float tolerance
    # (guards against summation-order churn while still catching any
    # real pricing/accounting change).
    np.testing.assert_allclose(
        payload["income"], golden["income"], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        payload["expenditure"], golden["expenditure"], rtol=1e-9,
        atol=1e-12,
    )
    for name, value in payload["metrics"].items():
        assert value == pytest.approx(golden["metrics"][name], rel=1e-9)


def test_goldens_agree_across_backends():
    """The three engines pin the *same* semantics, not three semantics."""
    fixtures = []
    for backend in GOLDEN_BACKENDS:
        path = GOLDEN_DIR / f"{backend.replace('-', '_')}.json"
        fixtures.append(json.loads(path.read_text()))
    first = fixtures[0]
    for other in fixtures[1:]:
        assert other["forwarded"] == first["forwarded"]
        assert other["counters"]["chunks"] == first["counters"]["chunks"]
        np.testing.assert_allclose(
            other["income"], first["income"], rtol=1e-9, atol=1e-12
        )
