"""Three-way backend equivalence and merge/split properties.

The central tentpole guarantee: the batched fast engine, the legacy
per-file fast loop, and the object-oriented reference network report
identical traffic counters (and incomes up to float summation order)
on a shared overlay and workload. On top of that, a property test
checks that ``SimulationResult.merge`` commutes with splitting the
workload — the paper's multi-machine protocol — under the batched
path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import FastSimulationConfig, get_backend
from repro.workloads.traces import TraceWorkload, WorkloadTrace


CONFIG = FastSimulationConfig(
    n_nodes=90, bits=11, bucket_size=4, originator_share=0.5,
    n_files=30, file_min=5, file_max=15, overlay_seed=8, workload_seed=3,
)


@pytest.fixture(scope="module")
def three_way():
    batched = get_backend("fast").prepare(CONFIG).run()
    perfile = get_backend("fast-perfile").prepare(CONFIG).run()
    reference = get_backend("reference").prepare(CONFIG).run()
    return batched, perfile, reference


class TestThreeWayEquivalence:
    def test_forwarded_identical(self, three_way):
        batched, perfile, reference = three_way
        assert np.array_equal(batched.forwarded, perfile.forwarded)
        assert np.array_equal(batched.forwarded, reference.forwarded)

    def test_first_hop_identical(self, three_way):
        batched, perfile, reference = three_way
        assert np.array_equal(batched.first_hop, perfile.first_hop)
        assert np.array_equal(batched.first_hop, reference.first_hop)

    def test_income_matches(self, three_way):
        batched, perfile, reference = three_way
        assert np.allclose(batched.income, perfile.income)
        assert np.allclose(batched.income, reference.income)

    def test_expenditure_matches(self, three_way):
        batched, perfile, reference = three_way
        assert np.allclose(batched.expenditure, perfile.expenditure)
        assert np.allclose(batched.expenditure, reference.expenditure)

    def test_hop_histogram_identical(self, three_way):
        batched, perfile, reference = three_way
        assert batched.hop_histogram == perfile.hop_histogram
        assert batched.hop_histogram == reference.hop_histogram

    def test_scalar_counters_identical(self, three_way):
        batched, perfile, reference = three_way
        for result in (perfile, reference):
            assert batched.files == result.files
            assert batched.chunks == result.chunks
            assert batched.total_hops == result.total_hops
            assert batched.local_hits == result.local_hits

    def test_fairness_metrics_match(self, three_way):
        batched, _perfile, reference = three_way
        assert batched.f2_gini() == pytest.approx(
            reference.f2_gini(), abs=1e-9
        )
        assert batched.f1_gini() == pytest.approx(
            reference.f1_gini(), abs=1e-9
        )


class TestMergeCommutesWithSplit:
    """run(A ++ B) == run(A).merge(run(B)) for the batched engine."""

    @staticmethod
    def _events():
        backend = get_backend("fast").prepare(CONFIG)
        nodes = backend.overlay.address_array()
        return CONFIG.workload().materialize(nodes, backend.overlay.space)

    @settings(max_examples=12, deadline=None)
    @given(split=st.integers(min_value=1, max_value=CONFIG.n_files - 1))
    def test_merge_commutes(self, split):
        events = self._events()
        backend = get_backend("fast").prepare(CONFIG)
        whole = backend.run(TraceWorkload(WorkloadTrace(events)))
        first = backend.run(TraceWorkload(WorkloadTrace(events[:split])))
        second = backend.run(TraceWorkload(WorkloadTrace(events[split:])))
        merged = first.merge(second)
        assert merged.files == whole.files
        assert merged.chunks == whole.chunks
        assert merged.total_hops == whole.total_hops
        assert merged.local_hits == whole.local_hits
        assert merged.hop_histogram == whole.hop_histogram
        assert np.array_equal(merged.forwarded, whole.forwarded)
        assert np.array_equal(merged.first_hop, whole.first_hop)
        assert np.allclose(merged.income, whole.income)
        assert np.allclose(merged.expenditure, whole.expenditure)

    def test_split_matches_generated_workload(self):
        """Materialized-trace replay equals direct generation."""
        backend = get_backend("fast").prepare(CONFIG)
        generated = backend.run()
        replayed = backend.run(TraceWorkload(WorkloadTrace(self._events())))
        assert np.array_equal(generated.forwarded, replayed.forwarded)
        assert np.allclose(generated.income, replayed.income)
