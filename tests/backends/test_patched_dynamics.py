"""Patched-static dynamics routing == the decoded reference, bit for bit.

The tentpole claim of the sparse epoch-patching work: churn epochs run
through the *static* banded kernel — over an in-place patched coded
matrix plus a dead-value LUT — and produce exactly the numbers the
decoded dynamic mode (kept behind ``REPRO_DECODED_DYNAMICS``) does.
Not statistically equivalent: every counter, every per-node vector,
every histogram bucket identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.backends.fast import (
    DECODED_DYNAMICS_ENV,
    NextHopTable,
    cached_overlay,
    clear_caches,
)
from repro.perf.table_cache import EPOCH_TABLE_LOG_ENV, global_table_cache

BASE = dict(
    n_nodes=120, bits=12, bucket_size=4, n_files=48,
    file_min=4, file_max=8, batch_files=8, catalog_size=30,
    originator_share=0.5,
)

#: Every dynamics shape the engine distinguishes: plain churn (empty
#: coded patch), storer-recomputing churn (non-trivial patches), a
#: join storm arriving in waves, and a composed stack that also
#: exercises caching, free-riding, and demand focus on top of
#: recomputed storers.
SCENARIOS = (
    "churn:rate=0.2",
    "churn:rate=0.2,recompute=true",
    "join:fraction=0.5,waves=3",
    "churn:rate=0.15,recompute=true+caching:size=64"
    "+freeriding:fraction=0.25+demand:share=0.2",
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


def run_config(monkeypatch, scenario: str, *, decoded: bool):
    if decoded:
        monkeypatch.setenv(DECODED_DYNAMICS_ENV, "1")
    else:
        monkeypatch.delenv(DECODED_DYNAMICS_ENV, raising=False)
    clear_caches()
    return run_simulation(FastSimulationConfig(**BASE, scenario=scenario))


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_patched_matches_decoded_exactly(monkeypatch, scenario):
    patched = run_config(monkeypatch, scenario, decoded=False)
    decoded = run_config(monkeypatch, scenario, decoded=True)
    for name in ("files", "chunks", "total_hops", "fallbacks",
                 "local_hits", "cache_hits", "unavailable"):
        assert getattr(patched, name) == getattr(decoded, name), name
    assert patched.hop_histogram == decoded.hop_histogram
    for name in ("forwarded", "first_hop", "income", "expenditure"):
        assert np.array_equal(
            getattr(patched, name), getattr(decoded, name)
        ), name


def test_coded_matrix_is_pristine_after_patched_run(monkeypatch):
    """The working copy reverts bit-exactly when a run finishes."""
    monkeypatch.delenv(DECODED_DYNAMICS_ENV, raising=False)
    config = FastSimulationConfig(
        **BASE, scenario="churn:rate=0.2,recompute=true"
    )
    table = NextHopTable(cached_overlay(config.overlay_config()))
    pristine = table.coded_transposed.copy()
    run_simulation(config)
    working = global_table_cache().writable_coded(table)
    assert np.array_equal(working, pristine)
    assert np.array_equal(table.coded_transposed, pristine)


def test_epoch_log_records_coded_patch_lifecycle(monkeypatch, tmp_path):
    """REPRO_EPOCH_TABLE_LOG covers the coded-matrix cache entries.

    One storer-recomputing run logs a ``patch`` (or ``hit``) and a
    matching ``revert`` for every epoch under the ``"coded:"``-prefixed
    chained fingerprint; a second run in the same process serves every
    patch from cache.
    """
    monkeypatch.delenv(DECODED_DYNAMICS_ENV, raising=False)
    log = tmp_path / "epoch-tables.log"
    monkeypatch.setenv(EPOCH_TABLE_LOG_ENV, str(log))
    config = FastSimulationConfig(
        **BASE, scenario="churn:rate=0.2,recompute=true"
    )
    n_epochs = config.n_epochs()
    run_simulation(config)
    lines = [line.split() for line in log.read_text().splitlines()]
    coded = [(fp, event) for fp, _, event in lines
             if fp.startswith("coded:")]
    assert [e for _, e in coded].count("patch") == n_epochs
    assert [e for _, e in coded].count("revert") == n_epochs
    run_simulation(config)
    lines = [line.split() for line in log.read_text().splitlines()]
    coded = [(fp, event) for fp, _, event in lines
             if fp.startswith("coded:")]
    assert [e for _, e in coded].count("patch") == n_epochs
    assert [e for _, e in coded].count("hit") == n_epochs
    assert [e for _, e in coded].count("revert") == 2 * n_epochs


def test_clear_caches_drops_working_copies(monkeypatch):
    """clear_caches covers the coded working copies.

    Built tables are patched in place (no copy), so the working-copy
    path only engages for read-only tables — the shape shared-memory
    attachments have. Freeze one to stand in for an attachment.
    """
    monkeypatch.delenv(DECODED_DYNAMICS_ENV, raising=False)
    config = FastSimulationConfig(
        **BASE, scenario="churn:rate=0.2,recompute=true"
    )
    overlay = cached_overlay(config.overlay_config())
    built = NextHopTable(overlay)
    coded = built.coded_transposed.copy()
    coded.flags.writeable = False
    storer = built.storer.copy()
    storer.flags.writeable = False
    frozen = NextHopTable.from_arrays(overlay, coded=coded, storer=storer)
    cache = global_table_cache()
    cache.install(overlay.fingerprint(), frozen)
    run_simulation(config)
    assert cache._working, "a read-only table forces a working copy"
    clear_caches()
    assert not cache._working
