"""Golden-pinned dynamics-trace round trip (the PR 5 acceptance run).

Recording ``churn:rate=0.1,recompute=true+caching:size=64`` and
replaying the trace file must be bit-identical — per-node forwarded
and first-hop vectors, hop histograms, every counter — to running the
scenario string directly, and both must match the committed golden
fixture, so neither the direct path nor the serialization round trip
can drift independently. ``pytest --update-golden`` refreshes the
fixture from the *direct* run only; the replayed run is always
compared, never recorded.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.scenarios.trace import record_dynamics

from .test_golden_scenarios import GOLDEN_DIR, scenario_payload

#: The acceptance scenario at fixture scale: 30 files / 8-file batches
#: = 4 epochs, catalog repeats so the bounded cache actually serves.
ROUNDTRIP_SCENARIO = "churn:rate=0.1,recompute=true+caching:size=64"

ROUNDTRIP_CONFIG = FastSimulationConfig(
    n_nodes=120,
    bits=12,
    bucket_size=4,
    originator_share=0.5,
    n_files=30,
    file_min=4,
    file_max=12,
    overlay_seed=42,
    workload_seed=7,
    batch_files=8,
    catalog_size=20,
    scenario=ROUNDTRIP_SCENARIO,
)

GOLDEN_PATH = GOLDEN_DIR / "scenario_trace_roundtrip.json"


@pytest.fixture(scope="module")
def recorded_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("dynamics") / "roundtrip.json"
    record_dynamics(
        ROUNDTRIP_CONFIG.scenario_stack(),
        ROUNDTRIP_CONFIG.scenario_context(),
    ).save(path)
    return path


def assert_matches_golden(payload: dict, golden: dict) -> None:
    assert payload["counters"] == golden["counters"]
    assert payload["hop_histogram"] == golden["hop_histogram"]
    assert payload["forwarded"] == golden["forwarded"]
    assert payload["first_hop"] == golden["first_hop"]
    np.testing.assert_allclose(
        payload["income"], golden["income"], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        payload["expenditure"], golden["expenditure"], rtol=1e-9,
        atol=1e-12,
    )


def test_direct_run_matches_golden(update_golden: bool):
    payload = scenario_payload(run_simulation(ROUNDTRIP_CONFIG))
    if update_golden:
        GOLDEN_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        f"pytest --update-golden"
    )
    assert_matches_golden(payload, json.loads(GOLDEN_PATH.read_text()))


def test_replayed_trace_matches_same_golden(recorded_trace_path):
    replayed = run_simulation(dataclasses.replace(
        ROUNDTRIP_CONFIG, scenario=f"trace:path={recorded_trace_path}",
    ))
    assert_matches_golden(
        scenario_payload(replayed),
        json.loads(GOLDEN_PATH.read_text()),
    )


def test_golden_run_exercised_both_dynamics():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["counters"]["unavailable"] > 0
    assert golden["counters"]["cache_hits"] > 0
