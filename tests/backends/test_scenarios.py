"""Fast-backend scenarios (path caching, churn) and baseline backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import FastSimulationConfig, get_backend, run_simulation
from repro.errors import ConfigurationError


BASE = dict(
    n_nodes=120, bits=12, bucket_size=4, originator_share=0.5,
    n_files=200, file_min=5, file_max=20, overlay_seed=1, workload_seed=2,
)


class TestCachingScenario:
    def test_cache_hits_reduce_traffic(self):
        plain = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, batch_files=25,
        ))
        cached = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, caching=True, batch_files=25,
        ))
        assert cached.cache_hits > 0
        assert cached.forwarded.sum() < plain.forwarded.sum()
        assert cached.mean_hops < plain.mean_hops

    def test_accounting_identities_hold_with_caching(self):
        result = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, caching=True, batch_files=25,
        ))
        assert sum(result.hop_histogram.values()) == result.chunks
        assert result.first_hop.sum() == result.chunks - result.local_hits
        assert result.income.sum() == pytest.approx(
            result.expenditure.sum()
        )

    def test_uniform_workload_rarely_hits(self):
        # Without popularity the 12-bit space still repeats addresses,
        # but hits must be far rarer than under a 30-file catalog.
        uniform = run_simulation(FastSimulationConfig(
            **BASE, caching=True, batch_files=25,
        ))
        catalog = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, caching=True, batch_files=25,
        ))
        assert uniform.cache_hits < catalog.cache_hits

    def test_caching_requires_batched_engine(self):
        config = FastSimulationConfig(**BASE, caching=True)
        backend = get_backend("fast-perfile").prepare(config)
        with pytest.raises(ConfigurationError, match="batched"):
            backend.run()


class TestChurnScenario:
    def test_offline_storers_cost_availability(self):
        result = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.2, batch_files=25,
        ))
        assert 0 < result.unavailable < result.chunks
        assert 0.0 < result.availability < 1.0
        # Retrieved chunks are fully accounted.
        assert (sum(result.hop_histogram.values())
                == result.chunks - result.unavailable)

    def test_zero_fraction_matches_static_run(self):
        static = run_simulation(FastSimulationConfig(**BASE))
        churnless = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.0,
        ))
        assert np.array_equal(static.forwarded, churnless.forwarded)
        assert static.unavailable == churnless.unavailable == 0

    def test_storer_recomputation_recovers_availability(self):
        dropped = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.3, batch_files=25,
        ))
        rereplicated = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.3, batch_files=25,
            churn_recompute_storers=True,
        ))
        assert rereplicated.availability > dropped.availability

    def test_deterministic_under_churn(self):
        config = FastSimulationConfig(
            **BASE, churn_offline_fraction=0.2, batch_files=25,
        )
        first = run_simulation(config)
        second = run_simulation(config)
        assert np.array_equal(first.forwarded, second.forwarded)
        assert first.unavailable == second.unavailable

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FastSimulationConfig(**BASE, churn_offline_fraction=1.5)


class TestBaselineBackends:
    def test_flat_reward_is_proportional(self):
        result = run_simulation(FastSimulationConfig(**BASE), backend="flat")
        assert np.allclose(
            result.income, result.forwarded.astype(np.float64)
        )
        # Proportional reward: F1 on (contribution, income) is zero.
        assert result.income_report().f1_gini == pytest.approx(0.0, abs=1e-9)

    def test_filecoin_rewards_storers_and_power(self):
        config = FastSimulationConfig(**BASE)
        retrieval_only = run_simulation(
            config, backend="filecoin", block_reward=0.0
        )
        with_blocks = run_simulation(
            config, backend="filecoin", block_reward=10.0
        )
        # Retrieval payments: one unit per served (non-local) chunk.
        assert retrieval_only.income.sum() == pytest.approx(
            float(retrieval_only.chunks - retrieval_only.local_hits)
        )
        assert with_blocks.income.sum() > retrieval_only.income.sum()

    def test_freerider_fraction_raises_inequality(self):
        config = FastSimulationConfig(**BASE)
        fair = run_simulation(config, backend="freerider", fraction=0.0)
        unfair = run_simulation(config, backend="freerider", fraction=0.5)
        assert unfair.income.sum() < fair.income.sum()
        assert unfair.f2_gini() > fair.f2_gini()

    def test_tit_for_tat_runs_own_swarm(self):
        result = run_simulation(FastSimulationConfig(**BASE),
                                backend="tit_for_tat")
        assert result.n_nodes <= BASE["n_nodes"]
        assert result.income.sum() > 0
        # Service received equals service given, swarm-wide.
        assert result.income.sum() == result.forwarded.sum()


class TestScenarioStrings:
    """The ``scenario`` composition field drives the same epoch kernel."""

    def test_string_churn_is_bit_identical_to_legacy_fields(self):
        legacy = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.2, batch_files=25,
        ))
        string = run_simulation(FastSimulationConfig(
            **BASE, scenario="churn:rate=0.2", batch_files=25,
        ))
        assert np.array_equal(legacy.forwarded, string.forwarded)
        assert np.array_equal(legacy.first_hop, string.first_hop)
        assert legacy.unavailable == string.unavailable
        assert legacy.hop_histogram == string.hop_histogram
        assert np.array_equal(legacy.income, string.income)

    def test_string_caching_is_bit_identical_to_legacy_fields(self):
        legacy = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, caching=True, batch_files=25,
        ))
        string = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, scenario="caching", batch_files=25,
        ))
        assert np.array_equal(legacy.forwarded, string.forwarded)
        assert legacy.cache_hits == string.cache_hits > 0

    def test_legacy_fields_compose_with_string_scenarios(self):
        # Both spellings of churn+caching must agree exactly.
        fields = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, caching=True,
            churn_offline_fraction=0.2, batch_files=25,
        ))
        string = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, scenario="churn:rate=0.2+caching",
            batch_files=25,
        ))
        assert np.array_equal(fields.forwarded, string.forwarded)
        assert fields.cache_hits == string.cache_hits
        assert fields.unavailable == string.unavailable

    def test_bounded_cache_evicts_and_still_accounts(self):
        unbounded = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, scenario="caching", batch_files=25,
        ))
        bounded = run_simulation(FastSimulationConfig(
            **BASE, catalog_size=30, scenario="caching:size=8",
            batch_files=25,
        ))
        assert 0 < bounded.cache_hits < unbounded.cache_hits
        assert bounded.income.sum() == pytest.approx(
            bounded.expenditure.sum()
        )

    def test_join_storm_recovers_availability_over_time(self):
        storm = run_simulation(FastSimulationConfig(
            **BASE, scenario="join:fraction=0.5,waves=3", batch_files=25,
        ))
        assert 0 < storm.unavailable < storm.chunks
        # Re-homing keeps fallback traffic flowing to live storers.
        assert storm.availability > 0.4

    def test_demand_shift_concentrates_expenditure(self):
        uniform = run_simulation(FastSimulationConfig(
            **BASE, batch_files=25,
        ))
        shifted = run_simulation(FastSimulationConfig(
            **BASE, scenario="demand:share=0.05", batch_files=25,
        ))
        assert (np.count_nonzero(shifted.expenditure)
                < np.count_nonzero(uniform.expenditure))
        assert shifted.income.sum() == pytest.approx(
            shifted.expenditure.sum()
        )

    def test_invalid_scenario_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            FastSimulationConfig(**BASE, scenario="warp:factor=9")

    def test_scenario_string_requires_batched_engine(self):
        config = FastSimulationConfig(**BASE, scenario="churn:rate=0.1")
        backend = get_backend("fast-perfile").prepare(config)
        with pytest.raises(ConfigurationError, match="batched"):
            backend.run()


class TestScenarioGuards:
    def test_reference_backend_rejects_scenario_fields(self):
        for fields in ({"caching": True},
                       {"churn_offline_fraction": 0.2}):
            config = FastSimulationConfig(**BASE, **fields)
            with pytest.raises(ConfigurationError, match="vectorized"):
                get_backend("reference").prepare(config)

    def test_tit_for_tat_marked_non_replaying(self):
        from repro.backends import TitForTatBackend

        assert not TitForTatBackend.replays_workload
        assert get_backend("fast").replays_workload

    def test_filecoin_rejects_scenario_fields(self):
        config = FastSimulationConfig(**BASE, churn_offline_fraction=0.2)
        with pytest.raises(ConfigurationError, match="filecoin"):
            get_backend("filecoin").prepare(config)

    def test_merge_rejects_mixed_scenarios(self):
        churned = run_simulation(FastSimulationConfig(
            **BASE, churn_offline_fraction=0.2, batch_files=25,
        ))
        static = run_simulation(FastSimulationConfig(**BASE))
        with pytest.raises(ConfigurationError, match="workload seed"):
            churned.merge(static)
