"""Unit tests for the backend protocol and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    FastSimulationConfig,
    SimulationBackend,
    available_backends,
    get_backend,
    register_backend,
    run_simulation,
)
from repro.backends.base import backend_specs
from repro.errors import ConfigurationError


SMALL = FastSimulationConfig(
    n_nodes=60, bits=10, bucket_size=4, originator_share=0.5,
    n_files=12, file_min=3, file_max=8, overlay_seed=3, workload_seed=9,
)


class TestRegistry:
    def test_core_backends_registered(self):
        names = available_backends()
        for expected in ("fast", "fast-perfile", "reference", "flat",
                         "filecoin", "freerider", "tit_for_tat"):
            assert expected in names

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ConfigurationError, match="fast"):
            get_backend("bogus")

    def test_instances_are_fresh(self):
        assert get_backend("fast") is not get_backend("fast")

    def test_backend_specs_have_descriptions(self):
        for name, description in backend_specs():
            assert name and description

    def test_register_requires_name(self):
        class Nameless(SimulationBackend):
            def prepare(self, config):
                return self

            def run(self, workload=None):
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="name"):
            register_backend(Nameless)

    def test_constructor_kwargs_forwarded(self):
        backend = get_backend("freerider", fraction=0.5)
        assert backend.fraction == 0.5


class TestProtocol:
    @pytest.mark.parametrize("name", ["fast", "fast-perfile", "reference"])
    def test_run_before_prepare_rejected(self, name):
        with pytest.raises(ConfigurationError, match="prepare"):
            get_backend(name).run()

    @pytest.mark.parametrize("name", ["fast", "fast-perfile", "reference",
                                      "flat", "filecoin", "freerider"])
    def test_prepare_chains_and_exposes_overlay(self, name):
        backend = get_backend(name)
        assert backend.prepare(SMALL) is backend
        assert backend.config is SMALL
        assert backend.overlay is not None
        assert len(backend.overlay) == SMALL.n_nodes

    @pytest.mark.parametrize("name", available_backends())
    def test_every_backend_produces_a_result(self, name):
        result = run_simulation(SMALL, backend=name)
        assert result.n_nodes >= 1
        assert len(result.forwarded) == result.n_nodes
        assert len(result.income) == result.n_nodes
        assert 0.0 <= result.f2_gini() <= 1.0

    def test_run_simulation_accepts_backend_kwargs(self):
        none = run_simulation(SMALL, backend="freerider", fraction=0.0)
        all_riders = run_simulation(SMALL, backend="freerider", fraction=1.0)
        assert none.income.sum() > 0
        assert all_riders.income.sum() == 0
        # Traffic itself is unchanged — only payment is withheld.
        assert np.array_equal(none.forwarded, all_riders.forwarded)
