"""Tests for the Fig. 3 reconstruction (repro.experiments.fig3)."""

from __future__ import annotations

import pytest

from repro.experiments.fig3 import FIG3_NODE, run_fig3


@pytest.fixture(scope="module")
def report():
    return run_fig3()


class TestFig3:
    def test_uses_the_papers_node_id(self, report):
        assert report.data["node"] == FIG3_NODE == 91

    def test_two_rendered_figures(self, report):
        assert len(report.figures) == 2
        assert "routing table of" in report.figures[0][1]
        assert "bucket occupancy" in report.figures[1][1]

    def test_bucket_capacities_respected_below_depth(self, report):
        depth = report.data["neighborhood_depth"]
        for bucket, count in report.data["bucket_histogram"].items():
            if bucket < depth:
                assert count <= 4

    def test_papers_worked_example_bucket_zero(self, report):
        # 245 = 0b11110101 differs from 91 = 0b01011011 in bit 0.
        assert report.data["bucket_for_245"] == 0

    def test_first_hop_lands_in_bucket_zero(self, report):
        if report.data["first_hop_bucket"] is not None:
            assert report.data["first_hop_bucket"] == 0

    def test_cli_scale_arguments_tolerated(self):
        scaled = run_fig3(n_files=10_000, n_nodes=1000)
        assert scaled.data["node"] == FIG3_NODE
