"""Tests for the extension experiments (repro.experiments.extensions)."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import (
    run_churn,
    run_overhead,
    run_privacy,
    run_sensitivity,
)


class TestOverhead:
    @pytest.fixture(scope="class")
    def report(self):
        return run_overhead(n_files=150, n_nodes=200)

    def test_both_bucket_sizes_reported(self, report):
        assert set(report.data["series"]) == {4, 20}

    def test_k20_pays_more_overhead(self, report):
        series = report.data["series"]
        # k=20 has ~4x the connections, so a larger overhead share.
        assert series[20]["share"] > series[4]["share"]

    def test_net_below_gross(self, report):
        for row in report.data["series"].values():
            assert row["net"] <= row["gross"]


class TestChurn:
    @pytest.fixture(scope="class")
    def report(self):
        return run_churn(n_files=40, n_nodes=100)

    def test_static_scenario_fully_available(self, report):
        assert report.data["series"]["static"]["availability"] == 1.0

    def test_churn_costs_availability(self, report):
        series = report.data["series"]
        assert series["churning"]["availability"] < 1.0
        assert series["churning"]["departures"] > 0


class TestPrivacy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_privacy(n_files=20, n_nodes=150, lookups_per_file=3)

    def test_iterative_exposes_more_identities(self, report):
        assert report.data["mean_exposure"] > 1.0

    def test_table_has_both_schemes(self, report):
        assert len(report.tables[0].rows) == 2


class TestSensitivity:
    def test_reductions_with_ci(self):
        report = run_sensitivity(
            n_files=150, n_nodes=150, n_replications=3
        )
        outcomes = report.data["outcomes"]
        assert set(outcomes) == {"F1", "F2"}
        for outcome in outcomes.values():
            low, high = outcome["ci"]
            assert low <= outcome["mean_reduction"] <= high
