"""Unit tests for the report container (repro.experiments.report)."""

from __future__ import annotations

from repro.analysis.reports import Table
from repro.experiments.report import ExperimentReport


def make_report() -> ExperimentReport:
    report = ExperimentReport(name="demo", title="Demo Experiment")
    table = Table(title="numbers", headers=["a", "b"])
    table.add_row(1, 2)
    report.add_table(table)
    report.add_figure("a figure", "| * |\n| o |")
    report.add_note("something observed")
    report.data["key"] = 42
    return report


class TestExperimentReport:
    def test_render_contains_everything(self):
        rendered = make_report().render()
        assert "Demo Experiment" in rendered
        assert "(demo)" in rendered
        assert "numbers" in rendered
        assert "-- a figure --" in rendered
        assert "note: something observed" in rendered

    def test_render_without_optional_sections(self):
        report = ExperimentReport(name="bare", title="Bare")
        rendered = report.render()
        assert rendered == "== Bare (bare) =="

    def test_sections_accumulate_in_order(self):
        report = make_report()
        report.add_note("second note")
        rendered = report.render()
        assert rendered.index("something observed") < rendered.index(
            "second note"
        )

    def test_data_is_a_plain_dict(self):
        report = make_report()
        assert report.data["key"] == 42
