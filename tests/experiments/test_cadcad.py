"""Tests for the cadCAD-style paper model (repro.experiments.cadcad)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.experiments.cadcad import build_paper_model, run_paper_model
from repro.kademlia.overlay import OverlayConfig
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig
from repro.workloads.distributions import UniformFileSize
from repro.workloads.generators import DownloadWorkload


def make_parts(n_files=10):
    network = SwarmNetwork(SwarmNetworkConfig(
        overlay=OverlayConfig(n_nodes=60, bits=11, seed=9),
    ))
    workload = DownloadWorkload(
        n_files=n_files, file_size=UniformFileSize(5, 15), seed=4,
    )
    events = workload.materialize(
        network.overlay.address_array(), network.overlay.space
    )
    return network, events


class TestPaperModel:
    def test_one_timestep_is_one_download(self):
        network, events = make_parts(8)
        results = run_paper_model(network, events)
        assert network.files_downloaded == 8
        assert results.series("files_downloaded", run=0) == list(range(9))

    def test_chunk_counter_matches_network(self):
        network, events = make_parts(6)
        results = run_paper_model(network, events)
        final = results.final_state(0)
        expected = sum(event.n_chunks for event in events)
        assert final["chunks_transferred"] == expected

    def test_hop_counter_matches_ledger(self):
        network, events = make_parts(6)
        results = run_paper_model(network, events)
        final = results.final_state(0)
        assert final["total_hops"] == int(network.forwarded_per_node().sum())

    def test_fairness_series_matches_direct_computation(self):
        network, events = make_parts(6)
        results = run_paper_model(network, events)
        final = results.final_state(0)
        assert final["f2_gini"] == pytest.approx(network.fairness().f2_gini)
        assert final["f1_gini"] == pytest.approx(network.paper_f1().f1_gini)

    def test_empty_workload_rejected(self):
        network, _ = make_parts(1)
        with pytest.raises(SimulationError):
            build_paper_model(network, [])

    def test_too_many_timesteps_raise(self):
        network, events = make_parts(3)
        from repro.engine.simulation import SimulationConfig, Simulator

        model = build_paper_model(network, events)
        with pytest.raises(SimulationError, match="exceeds the workload"):
            Simulator(model).run(SimulationConfig(timesteps=5))
