"""Tests for the replicated (error-bar) registry experiments."""

from __future__ import annotations

from repro.experiments.registry import get_experiment
from repro.experiments.sweeps import (
    run_fig5_sweep,
    run_k_sweep_ci,
    run_table1_sweep,
)
from repro.sweeps import MetricSummary, SweepResult

SMALL = dict(n_files=40, n_nodes=60)


class TestTable1Sweep:
    def test_error_bars_per_cell(self):
        report = run_table1_sweep(**SMALL, seeds=3)
        forwarded = report.data["forwarded"]
        assert set(forwarded) == {
            (4, 0.2), (4, 1.0), (20, 0.2), (20, 1.0)
        }
        for summary in forwarded.values():
            assert isinstance(summary, MetricSummary)
            assert summary.n == 3
            assert summary.low <= summary.mean <= summary.high
            assert summary.std > 0.0  # replicas genuinely vary

    def test_bandwidth_ordering_survives_replication(self):
        report = run_table1_sweep(**SMALL, seeds=3)
        forwarded = report.data["forwarded"]
        for share in (0.2, 1.0):
            assert forwarded[(20, share)].mean < forwarded[(4, share)].mean

    def test_registered_with_backend_support(self):
        spec = get_experiment("table1_sweep")
        assert spec.supports_backend
        assert spec.runner is run_table1_sweep


class TestFig5Sweep:
    def test_gini_intervals_and_headline_note(self):
        report = run_fig5_sweep(**SMALL, seeds=3)
        gini = report.data["gini"]
        assert set(gini) == {(4, 0.2), (4, 1.0), (20, 0.2), (20, 1.0)}
        for summary in gini.values():
            assert 0.0 <= summary.mean <= 1.0
        assert any("Gini reduction" in note for note in report.notes)


class TestKSweepCi:
    def test_one_row_per_bucket_size(self):
        report = run_k_sweep_ci(
            **SMALL, bucket_sizes=(4, 8), seeds=2
        )
        sweep = report.data["sweep"]
        assert isinstance(sweep, SweepResult)
        assert [dict(c.overrides)["bucket_size"]
                for c in sweep.summaries] == [4, 8]
        table = report.tables[0]
        assert len(table.rows) == 2

    def test_single_seed_collapses_to_point_estimates(self):
        report = run_k_sweep_ci(**SMALL, bucket_sizes=(4,), seeds=1)
        cell = report.data["sweep"].summaries[0]
        forwarded = cell.metrics["mean_forwarded"]
        assert forwarded.n == 1
        assert forwarded.std == 0.0
        assert forwarded.low == forwarded.mean == forwarded.high
