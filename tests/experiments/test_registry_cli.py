"""Tests for the experiment registry and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import (
    REGISTRY,
    get_experiment,
    list_experiments,
)


class TestRegistry:
    def test_paper_artifacts_registered(self):
        for name in ("table1", "fig4", "fig5", "fig6", "headline"):
            spec = get_experiment(name)
            assert spec.paper_artifact is not None

    def test_ablations_registered(self):
        for name in ("k_sweep", "bucket0", "pricing", "popularity",
                     "caching", "freeriders", "baselines"):
            assert get_experiment(name).paper_artifact is None

    def test_unknown_name_raises_with_list(self):
        with pytest.raises(ExperimentError, match="table1"):
            get_experiment("bogus")

    def test_list_puts_paper_artifacts_first(self):
        specs = list_experiments()
        first_ablation = next(
            i for i, spec in enumerate(specs) if spec.paper_artifact is None
        )
        assert all(
            spec.paper_artifact is None for spec in specs[first_ablation:]
        )

    def test_every_runner_is_callable(self):
        for spec in REGISTRY.values():
            assert callable(spec.runner)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "Table I" in output

    def test_run_command_scaled_down(self, capsys):
        code = main(["run", "table1", "--files", "60", "--nodes", "100"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Average forwarded chunks" in output
        assert "completed in" in output

    def test_run_markdown(self, capsys):
        code = main([
            "run", "table1", "--files", "60", "--nodes", "100",
            "--markdown",
        ])
        assert code == 0
        assert "| configuration |" in capsys.readouterr().out

    def test_run_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        code = main([
            "run", "table1", "--files", "60", "--nodes", "100",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "Average forwarded chunks" in out.read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            main(["run", "bogus"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestOverlayCli:
    def test_build_and_inspect_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "overlay.json"
        code = main([
            "overlay", "build", str(path),
            "--nodes", "50", "--bits", "10", "--seed", "3",
        ])
        assert code == 0
        assert path.exists()
        assert "50 nodes" in capsys.readouterr().out

        code = main(["overlay", "inspect", str(path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "routing table of" in output
        assert "bucket occupancy" in output

    def test_inspect_specific_node(self, tmp_path, capsys):
        path = tmp_path / "overlay.json"
        main([
            "overlay", "build", str(path),
            "--nodes", "50", "--bits", "10", "--seed", "3",
        ])
        capsys.readouterr()
        from repro.kademlia.overlay import Overlay

        node = Overlay.load(path).addresses[5]
        code = main(["overlay", "inspect", str(path),
                     "--node", str(node)])
        assert code == 0
        assert f"(={node})" in capsys.readouterr().out


class TestBackendOption:
    def test_backends_command_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in ("fast", "reference", "tit_for_tat"):
            assert name in output

    def test_run_with_backend(self, capsys):
        code = main([
            "run", "table1", "--files", "40", "--nodes", "90",
            "--backend", "reference",
        ])
        assert code == 0
        assert "Average forwarded chunks" in capsys.readouterr().out

    def test_unsupported_backend_is_ignored_with_note(self, capsys):
        code = main([
            "run", "fig3", "--backend", "reference",
        ])
        assert code == 0
        assert "ignored" in capsys.readouterr().out

    def test_unknown_backend_raises(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            main(["run", "table1", "--files", "40", "--nodes", "90",
                  "--backend", "bogus"])

    def test_backend_flags_marked_in_registry(self):
        assert get_experiment("table1").supports_backend
        assert get_experiment("k_sweep").supports_backend
        assert not get_experiment("fig3").supports_backend

    def test_non_replaying_backend_rejected(self):
        with pytest.raises(ExperimentError, match="does not replay"):
            main(["run", "k_sweep", "--files", "40", "--nodes", "90",
                  "--backend", "tit_for_tat"])
