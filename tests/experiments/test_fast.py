"""Unit tests for the vectorized simulator (repro.backends.fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.fast import (
    FastSimulation,
    FastSimulationConfig,
    NextHopTable,
    cached_next_hop_table,
    cached_overlay,
)
from repro.errors import ConfigurationError
from repro.kademlia.routing import Router


SMALL = FastSimulationConfig(
    n_nodes=80, bits=10, bucket_size=4, originator_share=0.5,
    n_files=30, file_min=5, file_max=20, overlay_seed=3, workload_seed=9,
)


class TestConfig:
    def test_paper_defaults(self):
        config = FastSimulationConfig()
        assert config.n_nodes == 1000
        assert config.bits == 16
        assert config.n_files == 10_000
        assert config.file_min == 100 and config.file_max == 1000

    def test_bucket_zero_override(self):
        config = FastSimulationConfig(bucket_size=4, bucket_zero=20)
        limits = config.overlay_config().limits
        assert limits.capacity(0) == 20
        assert limits.capacity(1) == 4

    def test_bad_pricing_rejected(self):
        with pytest.raises(ConfigurationError):
            FastSimulationConfig(pricing="bogus")

    def test_bad_share_rejected(self):
        with pytest.raises(ConfigurationError):
            FastSimulationConfig(originator_share=1.5)


class TestNextHopTable:
    def test_matches_router_exhaustively(self, small_overlay):
        table = NextHopTable(small_overlay)
        router = Router(small_overlay)
        addresses = small_overlay.addresses
        for origin in addresses[:20]:
            origin_index = small_overlay.index_of(origin)
            for target in range(0, small_overlay.space.size, 5):
                hop = int(table.next_hop[origin_index, target])
                closest = small_overlay.table(origin).closest_peer(target)
                if (closest ^ target) < (origin ^ target):
                    assert addresses[hop] == closest
                else:
                    # Greedy terminal: the compact unsigned table
                    # stores its dtype's max value, not -1.
                    assert hop == table.sentinel

    def test_storer_matches_overlay(self, small_overlay):
        table = NextHopTable(small_overlay)
        for target in range(0, small_overlay.space.size, 7):
            assert (
                small_overlay.addresses[table.storer[target]]
                == small_overlay.closest_node(target)
            )

    def test_wide_space_rejected(self):
        config = FastSimulationConfig(n_nodes=10, bits=24)
        with pytest.raises(ConfigurationError, match="at most"):
            FastSimulation(config)


class TestCaches:
    def test_overlay_cache_reuses_instances(self):
        a = cached_overlay(SMALL.overlay_config())
        b = cached_overlay(SMALL.overlay_config())
        assert a is b

    def test_table_cache_reuses_instances(self):
        overlay = cached_overlay(SMALL.overlay_config())
        assert cached_next_hop_table(overlay) is cached_next_hop_table(overlay)


class TestRun:
    def test_accounting_identities(self):
        result = FastSimulation(SMALL).run()
        assert result.files == 30
        assert result.chunks >= 30 * 5
        # Total forwarded chunk-hops equals total hops.
        assert result.forwarded.sum() == result.total_hops
        # Exactly one paid first hop per non-local chunk.
        assert result.first_hop.sum() == result.chunks - result.local_hits
        # Income was paid out by originators.
        assert result.income.sum() == pytest.approx(
            result.expenditure.sum()
        )
        # The hop histogram accounts for every chunk.
        assert sum(result.hop_histogram.values()) == result.chunks

    def test_first_hop_bounded_by_forwarded(self):
        result = FastSimulation(SMALL).run()
        assert np.all(result.first_hop <= result.forwarded)

    def test_deterministic(self):
        a = FastSimulation(SMALL).run()
        b = FastSimulation(SMALL).run()
        assert np.array_equal(a.forwarded, b.forwarded)
        assert np.allclose(a.income, b.income)

    def test_workload_seed_changes_traffic(self):
        other = FastSimulationConfig(
            **{**SMALL.__dict__, "workload_seed": 10}
        )
        a = FastSimulation(SMALL).run()
        b = FastSimulation(other).run()
        assert not np.array_equal(a.forwarded, b.forwarded)

    def test_summary_text(self):
        result = FastSimulation(SMALL).run()
        text = result.summary()
        assert "F2 Gini" in text and "mean hops" in text

    def test_ginis_in_range(self):
        result = FastSimulation(SMALL).run()
        assert 0.0 <= result.f2_gini() <= 1.0
        assert 0.0 <= result.f1_gini() <= 1.0

    def test_flat_pricing_income_counts_chunks(self):
        config = FastSimulationConfig(
            **{**SMALL.__dict__, "pricing": "flat"}
        )
        result = FastSimulation(config).run()
        assert result.income.sum() == pytest.approx(float(
            result.first_hop.sum()
        ))

    def test_proximity_pricing_runs(self):
        config = FastSimulationConfig(
            **{**SMALL.__dict__, "pricing": "proximity"}
        )
        result = FastSimulation(config).run()
        assert result.income.sum() > 0


class TestMerge:
    def test_merge_adds_counters(self):
        first = FastSimulation(SMALL).run()
        second_config = FastSimulationConfig(
            **{**SMALL.__dict__, "workload_seed": 10}
        )
        second = FastSimulation(second_config).run()
        merged = first.merge(second)
        assert merged.files == first.files + second.files
        assert np.array_equal(
            merged.forwarded, first.forwarded + second.forwarded
        )
        assert merged.chunks == first.chunks + second.chunks

    def test_merge_rejects_different_overlays(self):
        first = FastSimulation(SMALL).run()
        other_config = FastSimulationConfig(
            **{**SMALL.__dict__, "bucket_size": 8}
        )
        other = FastSimulation(other_config).run()
        with pytest.raises(ConfigurationError):
            first.merge(other)
