"""Tests for the storage-incentive experiment (repro.experiments.storage)."""

from __future__ import annotations

import pytest

from repro.experiments.storage import run_storage


@pytest.fixture(scope="module")
def report():
    return run_storage(
        n_files=100, n_nodes=120, n_rounds=120, uploads=40,
        chunks_per_upload=20,
    )


class TestStorageExperiment:
    def test_three_reward_streams(self, report):
        assert len(report.tables[0].rows) == 3

    def test_pot_fully_distributed(self, report):
        assert report.data["pot_remaining"] == pytest.approx(0.0)

    def test_many_distinct_winners(self, report):
        assert report.data["distinct_winners"] > 5

    def test_ginis_in_range(self, report):
        for key in ("storage_gini", "bandwidth_gini", "combined_gini"):
            assert 0.0 <= report.data[key] <= 1.0

    def test_cheater_accounting(self, report):
        assert (
            0 <= report.data["cheaters_detected"]
            <= report.data["cheaters_planted"]
        )

    def test_combined_not_worse_than_lottery(self, report):
        # Adding the broad bandwidth stream to the narrow lottery
        # stream cannot make the combined distribution less equal
        # than the lottery alone.
        assert report.data["combined_gini"] <= report.data["storage_gini"]
