"""Tests for the ablation runners (repro.experiments.ablations)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_baselines,
    run_bucket0,
    run_caching,
    run_freeriders,
    run_k_sweep,
    run_popularity,
    run_pricing,
)


class TestKSweep:
    def test_fairness_improves_with_k(self):
        report = run_k_sweep(
            n_files=150, n_nodes=200, bucket_sizes=(2, 8, 20)
        )
        series = report.data["series"]
        assert series[20]["f2"] < series[2]["f2"]
        assert series[20]["forwarded"] < series[2]["forwarded"]
        assert series[20]["degree"] > series[2]["degree"]


class TestBucket0:
    def test_widening_bucket_zero_helps(self):
        report = run_bucket0(
            n_files=150, n_nodes=200, bucket_zero_sizes=(4, 20)
        )
        series = report.data["series"]
        assert series[20]["f2"] < series[4]["f2"]


class TestPricing:
    def test_three_strategies_reported(self):
        report = run_pricing(n_files=100, n_nodes=150)
        assert set(report.data["series"]) == {"xor", "proximity", "flat"}
        for row in report.data["series"].values():
            assert 0.0 <= row[4] <= 1.0
            assert 0.0 <= row[20] <= 1.0


class TestPopularity:
    def test_uniform_baseline_present(self):
        report = run_popularity(
            n_files=100, n_nodes=150, exponents=(1.0,)
        )
        assert "uniform" in report.data["series"]
        assert len(report.data["series"]) == 2


class TestCaching:
    def test_caches_reduce_traffic(self):
        report = run_caching(n_files=80, n_nodes=100, catalog_size=20)
        series = report.data["series"]
        assert series["lru"]["forwarded"] <= series["none"]["forwarded"]
        assert series["lru"]["cache_hits"] > 0
        assert series["none"]["cache_hits"] == 0


class TestFreeriders:
    def test_defaults_grow_with_fraction(self):
        report = run_freeriders(
            n_files=60, n_nodes=100, fractions=(0.0, 0.4)
        )
        series = report.data["series"]
        assert series[0.0]["defaults"] == 0
        assert series[0.4]["defaults"] > 0

    def test_freeriding_hurts_f2(self):
        report = run_freeriders(
            n_files=60, n_nodes=100, fractions=(0.0, 0.5)
        )
        series = report.data["series"]
        assert series[0.5]["f2"] > series[0.0]["f2"]


class TestBaselines:
    @pytest.fixture(scope="class")
    def report(self):
        return run_baselines(n_files=120, n_nodes=120)

    def test_ideal_mechanisms_hit_their_bounds(self, report):
        rows = report.data["rows"]
        f2, f1 = rows["per-chunk reward (F1-ideal)"]
        assert f1 == pytest.approx(0.0, abs=1e-9)
        f2, f1 = rows["equal split (F2-ideal)"]
        assert f2 == pytest.approx(0.0, abs=1e-9)

    def test_tft_swarm_completes(self, report):
        assert report.data["tft_completion"] == 1.0

    def test_all_mechanisms_reported(self, report):
        assert len(report.tables[0].rows) == 5
