"""Tests for the paper-artifact runners (repro.experiments.paper).

These run the real experiment code at reduced scale (300 nodes, a few
hundred files) and assert the qualitative results the paper reports:
larger k means less total bandwidth and lower Gini coefficients.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_grid,
    run_headline,
    run_table1,
)

N_FILES = 250
N_NODES = 300


@pytest.fixture(scope="module")
def grid():
    return run_grid(N_FILES, N_NODES)


class TestRunGrid:
    def test_all_four_cells(self, grid):
        assert set(grid) == {(4, 0.2), (4, 1.0), (20, 0.2), (20, 1.0)}

    def test_cells_cached_across_calls(self, grid):
        again = run_grid(N_FILES, N_NODES)
        for key in grid:
            assert again[key] is grid[key]

    def test_k20_uses_less_bandwidth(self, grid):
        for share in (0.2, 1.0):
            assert (
                grid[(20, share)].average_forwarded_chunks()
                < grid[(4, share)].average_forwarded_chunks()
            )

    def test_k20_is_fairer_on_f2(self, grid):
        for share in (0.2, 1.0):
            assert grid[(20, share)].f2_gini() < grid[(4, share)].f2_gini()

    def test_k20_is_fairer_on_f1(self, grid):
        for share in (0.2, 1.0):
            assert grid[(20, share)].f1_gini() < grid[(4, share)].f1_gini()

    def test_skewed_workload_less_fair(self, grid):
        # 20% originators concentrates payments (paper Fig. 5).
        for k in (4, 20):
            assert grid[(k, 0.2)].f2_gini() > grid[(k, 1.0)].f2_gini()


class TestTable1:
    def test_report_shape(self):
        report = run_table1(N_FILES, N_NODES)
        table = report.tables[0]
        assert table.headers[0] == "configuration"
        assert len(table.rows) == 2
        assert report.data["grid"]["k=4,share=0.2"] > 0

    def test_notes_mention_ratio(self):
        report = run_table1(N_FILES, N_NODES)
        assert any("1." in note for note in report.notes)


class TestFig4:
    def test_four_panels(self):
        report = run_fig4(N_FILES, N_NODES)
        assert len(report.figures) == 4
        for caption, rendered in report.figures:
            assert "k=" in caption
            assert "distribution" in rendered

    def test_area_ratio_above_one(self):
        report = run_fig4(N_FILES, N_NODES)
        assert report.data["area_ratio_0.2"] > 1.0
        assert report.data["area_ratio_1.0"] > 1.0


class TestFig5:
    def test_gini_table_and_curves(self):
        report = run_fig5(N_FILES, N_NODES)
        assert len(report.figures) == 1
        gini = report.data["gini"]
        assert gini["k=20,share=0.2"] < gini["k=4,share=0.2"]

    def test_rendered_curves_mention_gini(self):
        report = run_fig5(N_FILES, N_NODES)
        assert "Gini" in report.figures[0][1]


class TestFig6:
    def test_f1_ordering(self):
        report = run_fig6(N_FILES, N_NODES)
        gini = report.data["gini"]
        assert gini["k=20,share=1.0"] < gini["k=4,share=0.2"]


class TestHeadline:
    def test_reductions_positive(self):
        report = run_headline(N_FILES, N_NODES)
        for prop in ("F1", "F2"):
            for value in report.data["reductions"][prop]:
                assert value > 0.0

    def test_render_contains_percentages(self):
        report = run_headline(N_FILES, N_NODES)
        assert "%" in report.render()
