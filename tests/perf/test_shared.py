"""Shared-memory table publication: attach equivalence + refcounting."""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.backends.fast import NextHopTable, clear_caches
from repro.errors import ConfigurationError
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.perf.shared import (
    SEGMENT_PREFIX,
    SharedTableHandle,
    SharedTableRegistry,
    attach_table,
    sweep_stale_segments,
)

CONFIG = OverlayConfig(
    n_nodes=60, bits=10, limits=BucketLimits.uniform(4), seed=5
)
OTHER = OverlayConfig(
    n_nodes=60, bits=10, limits=BucketLimits.uniform(4), seed=6
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture()
def registry():
    return SharedTableRegistry()


class TestPublishAttach:
    def test_attached_table_is_bit_identical(self, registry):
        overlay = Overlay.build(CONFIG)
        built = NextHopTable(overlay)
        handle = registry.acquire(built)
        try:
            attached = attach_table(handle, overlay)
            assert np.array_equal(
                attached.coded_transposed, built.coded_transposed
            )
            assert np.array_equal(attached.next_hop, built.next_hop)
            assert np.array_equal(attached.storer, built.storer)
            assert attached.sentinel == built.sentinel
            assert attached.entry_dtype == built.entry_dtype
        finally:
            registry.release(handle.fingerprint)

    def test_attached_arrays_are_read_only(self, registry):
        overlay = Overlay.build(CONFIG)
        handle = registry.acquire(NextHopTable(overlay))
        try:
            attached = attach_table(handle, overlay)
            with pytest.raises(ValueError):
                attached.coded_transposed[0, 0] = 1
            with pytest.raises(ValueError):
                attached.storer[0] = 1
        finally:
            registry.release(handle.fingerprint)

    def test_attach_refuses_mismatched_overlay(self, registry):
        overlay = Overlay.build(CONFIG)
        other = Overlay.build(OTHER)
        handle = registry.acquire(NextHopTable(overlay))
        try:
            with pytest.raises(ConfigurationError, match="does not match"):
                attach_table(handle, other)
        finally:
            registry.release(handle.fingerprint)

    def test_handle_payload_round_trip(self, registry):
        overlay = Overlay.build(CONFIG)
        handle = registry.acquire(NextHopTable(overlay))
        try:
            clone = SharedTableHandle.from_payload(handle.to_payload())
            assert clone == handle
            attached = attach_table(clone, overlay)
            assert attached.n_nodes == len(overlay)
        finally:
            registry.release(handle.fingerprint)


class TestRefcounting:
    def test_acquire_is_idempotent_per_topology(self, registry):
        overlay = Overlay.build(CONFIG)
        table = NextHopTable(overlay)
        first = registry.acquire(table)
        second = registry.acquire(table)
        assert first == second
        assert registry.references(first.fingerprint) == 2
        assert len(registry) == 1
        registry.release(first.fingerprint)
        # Still published: one holder left.
        assert registry.references(first.fingerprint) == 1
        attach_table(first, overlay)
        registry.release(first.fingerprint)
        assert registry.references(first.fingerprint) == 0
        assert len(registry) == 0

    def test_last_release_unlinks_segments(self, registry):
        overlay = Overlay.build(CONFIG)
        handle = registry.acquire(NextHopTable(overlay))
        registry.release(handle.fingerprint)
        with pytest.raises(FileNotFoundError):
            attach_table(handle, overlay)

    def test_release_of_unknown_fingerprint_is_noop(self, registry):
        registry.release("not-a-fingerprint")  # must not raise

    def test_distinct_topologies_get_distinct_entries(self, registry):
        handle_a = registry.acquire(NextHopTable(Overlay.build(CONFIG)))
        handle_b = registry.acquire(NextHopTable(Overlay.build(OTHER)))
        try:
            assert handle_a.fingerprint != handle_b.fingerprint
            assert len(registry) == 2
        finally:
            registry.release(handle_a.fingerprint)
            registry.release(handle_b.fingerprint)


class TestStaleSegmentSweep:
    def test_segments_carry_the_publisher_pid(self, registry):
        handle = registry.acquire(NextHopTable(Overlay.build(CONFIG)))
        try:
            prefix = f"{SEGMENT_PREFIX}_{os.getpid()}_"
            assert handle.coded.name.startswith(prefix)
            assert handle.storer.name.startswith(prefix)
        finally:
            registry.release(handle.fingerprint)

    def test_dead_pid_segment_is_reclaimed(self):
        # Fabricate a segment attributed to a pid that cannot exist:
        # re-using a dead child's pid models a SIGKILLed publisher.
        child = os.fork()
        if child == 0:
            os._exit(0)  # pragma: no cover - child exits immediately
        os.waitpid(child, 0)
        name = f"{SEGMENT_PREFIX}_{child}_deadbeef"
        segment = shared_memory.SharedMemory(
            create=True, size=64, name=name
        )
        segment.close()
        try:
            with pytest.warns(RuntimeWarning, match="stale"):
                removed = sweep_stale_segments()
            assert name in removed
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            try:
                shared_memory.SharedMemory(name=name).unlink()
            except FileNotFoundError:
                pass

    def test_live_publisher_segments_survive(self, registry):
        # Our own (live) pid owns these; the sweep must not touch them.
        handle = registry.acquire(NextHopTable(Overlay.build(CONFIG)))
        try:
            removed = sweep_stale_segments()
            assert handle.coded.name not in removed
            assert handle.storer.name not in removed
            attach_table(handle, Overlay.build(CONFIG))  # still there
        finally:
            registry.release(handle.fingerprint)

    def test_foreign_names_are_ignored(self):
        segment = shared_memory.SharedMemory(
            create=True, size=64, name="notrepro_123_aa"
        )
        try:
            removed = sweep_stale_segments()
            assert "notrepro_123_aa" not in removed
        finally:
            segment.close()
            segment.unlink()
