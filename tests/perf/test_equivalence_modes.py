"""Table provenance must never change simulation results.

Runs every registry backend three ways — freshly built table,
in-process cached table, shared-memory-attached table — and asserts
bit-identical :class:`SimulationResult` vectors, plus that the
attached path still reproduces the committed golden fixture. A table
is pure topology data; where its bytes live (fresh allocation, memo,
or another process's shared segment) must be unobservable.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import available_backends, run_simulation
from repro.backends.fast import NextHopTable, cached_overlay, clear_caches
from repro.perf.shared import shared_table_registry
from repro.perf.table_cache import global_table_cache
from tests.backends.test_golden import (
    GOLDEN_CONFIG,
    GOLDEN_DIR,
    golden_payload,
)

ALL_BACKENDS = tuple(available_backends())

#: Backends that resolve a NextHopTable during prepare().
TABLE_BACKENDS = ("fast", "fast-perfile", "flat", "filecoin", "freerider",
                  "time")


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


def run_fresh(backend: str):
    clear_caches()
    return run_simulation(GOLDEN_CONFIG, backend=backend)


def run_cached(backend: str):
    clear_caches()
    run_simulation(GOLDEN_CONFIG, backend=backend)
    return run_simulation(GOLDEN_CONFIG, backend=backend)


def run_attached(backend: str):
    clear_caches()
    overlay = cached_overlay(GOLDEN_CONFIG.overlay_config())
    table = NextHopTable(overlay)
    registry = shared_table_registry()
    handle = registry.acquire(table)
    try:
        cache = global_table_cache()
        cache.clear()
        cache.register_handle(handle)
        result = run_simulation(GOLDEN_CONFIG, backend=backend)
        if backend in TABLE_BACKENDS:
            assert cache.stats.attaches == 1, (
                f"{backend} should have attached the published table"
            )
            assert cache.stats.builds == 0, (
                f"{backend} rebuilt a table despite the published handle"
            )
        return result
    finally:
        registry.release(handle.fingerprint)
        clear_caches()


def assert_identical(a, b, context: str) -> None:
    assert np.array_equal(a.forwarded, b.forwarded), context
    assert np.array_equal(a.first_hop, b.first_hop), context
    assert np.array_equal(a.income, b.income), context
    assert np.array_equal(a.expenditure, b.expenditure), context
    assert np.array_equal(a.node_addresses, b.node_addresses), context
    assert a.files == b.files, context
    assert a.chunks == b.chunks, context
    assert a.total_hops == b.total_hops, context
    assert a.local_hits == b.local_hits, context
    assert a.fallbacks == b.fallbacks, context
    assert a.cache_hits == b.cache_hits, context
    assert a.unavailable == b.unavailable, context
    assert a.hop_histogram == b.hop_histogram, context


def test_registry_is_the_expected_eight():
    assert ALL_BACKENDS == (
        "fast", "fast-perfile", "filecoin", "flat", "freerider",
        "reference", "time", "tit_for_tat",
    )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_fresh_cached_attached_identical(backend: str):
    fresh = run_fresh(backend)
    cached = run_cached(backend)
    attached = run_attached(backend)
    assert_identical(fresh, cached, f"{backend}: fresh vs cached")
    assert_identical(fresh, attached, f"{backend}: fresh vs attached")


@pytest.mark.parametrize("backend", ("fast", "fast-perfile", "reference"))
def test_attached_tables_reproduce_golden_fixtures(backend: str):
    """The shm path pins the *same* semantics the goldens froze."""
    payload = golden_payload(run_attached(backend))
    golden = json.loads(
        (GOLDEN_DIR / f"{backend.replace('-', '_')}.json").read_text()
    )
    assert payload["counters"] == golden["counters"]
    assert payload["forwarded"] == golden["forwarded"]
    assert payload["first_hop"] == golden["first_hop"]
    assert payload["hop_histogram"] == golden["hop_histogram"]
    np.testing.assert_allclose(
        payload["income"], golden["income"], rtol=1e-9, atol=1e-12
    )
