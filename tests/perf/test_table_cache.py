"""Unit tests for the content-addressed table cache and fingerprints."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backends.fast import (
    NextHopTable,
    TABLE_BUILD_LOG_ENV,
    cached_next_hop_table,
    cached_overlay,
    clear_caches,
)
from repro.errors import ConfigurationError
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.perf.table_cache import TableCache, global_table_cache

CONFIG = OverlayConfig(
    n_nodes=60, bits=10, limits=BucketLimits.uniform(4), seed=5
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


class TestFingerprint:
    def test_deterministic_across_builds(self):
        a = Overlay.build(CONFIG)
        b = Overlay.build(CONFIG)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_every_topology_parameter(self):
        base = Overlay.build(CONFIG).fingerprint()
        for change in (
            {"n_nodes": 61},
            {"bits": 11},
            {"limits": BucketLimits.uniform(8)},
            {"limits": BucketLimits(default=4, overrides={0: 20})},
            {"seed": 6},
            {"neighborhood_min": 2},
            {"symmetric_neighborhood": False},
        ):
            changed = OverlayConfig(**{
                "n_nodes": CONFIG.n_nodes,
                "bits": CONFIG.bits,
                "limits": CONFIG.limits,
                "seed": CONFIG.seed,
                "neighborhood_min": CONFIG.neighborhood_min,
                "symmetric_neighborhood": CONFIG.symmetric_neighborhood,
                **change,
            })
            assert Overlay.build(changed).fingerprint() != base, change

    def test_covers_table_contents_not_just_config(self):
        built = Overlay.build(CONFIG)
        # A hand-crafted overlay claiming the same config must not
        # collide with the genuinely built topology.
        tables = {
            address: built.table(address) for address in built.addresses
        }
        victim = sorted(tables)[0]
        stripped = {k: v for k, v in tables.items()}
        rebuilt = Overlay(CONFIG, built.addresses, stripped)
        assert rebuilt.fingerprint() == built.fingerprint()
        # Remove one edge: fingerprint must move.
        peers = tables[victim].peers()
        from repro.kademlia.table import RoutingTable

        replacement = RoutingTable(victim, built.space, CONFIG.limits)
        for peer in peers[:-1]:
            replacement.add_unbounded(int(peer))
        stripped[victim] = replacement
        modified = Overlay(CONFIG, built.addresses, stripped)
        assert modified.fingerprint() != built.fingerprint()

    def test_cached_on_instance(self):
        overlay = Overlay.build(CONFIG)
        assert overlay.fingerprint() is overlay.fingerprint()


class TestTableCache:
    def test_build_then_hit(self):
        cache = TableCache()
        overlay = Overlay.build(CONFIG)
        first = cache.get(overlay)
        second = cache.get(overlay)
        assert first is second
        assert cache.stats.builds == 1
        assert cache.stats.hits == 1
        assert cache.stats.attaches == 0

    def test_equal_topologies_share_one_table(self):
        cache = TableCache()
        first = cache.get(Overlay.build(CONFIG))
        second = cache.get(Overlay.build(CONFIG))
        assert first is second
        assert cache.stats.builds == 1

    def test_install_and_discard(self):
        cache = TableCache()
        overlay = Overlay.build(CONFIG)
        table = NextHopTable(overlay)
        cache.install(overlay.fingerprint(), table)
        assert cache.get(overlay) is table
        assert cache.stats.builds == 0
        cache.discard(overlay.fingerprint())
        assert overlay.fingerprint() not in cache

    def test_clear_resets_stats(self):
        cache = TableCache()
        cache.get(Overlay.build(CONFIG))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.snapshot() == {
            "builds": 0, "attaches": 0, "hits": 0,
        }

    def test_cached_next_hop_table_goes_through_global_cache(self):
        overlay = cached_overlay(CONFIG)
        table = cached_next_hop_table(overlay)
        assert cached_next_hop_table(overlay) is table
        assert global_table_cache().stats.builds == 1


class TestBuildLog:
    def test_cold_build_appends_fingerprint_and_pid(self, tmp_path,
                                                    monkeypatch):
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        overlay = Overlay.build(CONFIG)
        NextHopTable(overlay)
        lines = log.read_text().splitlines()
        assert len(lines) == 1
        fingerprint, pid = lines[0].split()
        assert fingerprint == overlay.fingerprint()
        assert int(pid) == os.getpid()

    def test_cache_hit_does_not_log(self, tmp_path, monkeypatch):
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        overlay = cached_overlay(CONFIG)
        cached_next_hop_table(overlay)
        cached_next_hop_table(overlay)
        assert len(log.read_text().splitlines()) == 1

    def test_silent_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TABLE_BUILD_LOG_ENV, raising=False)
        NextHopTable(Overlay.build(CONFIG))  # must not raise or write


class TestFromArrays:
    def test_round_trips_built_arrays(self):
        overlay = Overlay.build(CONFIG)
        built = NextHopTable(overlay)
        wrapped = NextHopTable.from_arrays(
            overlay,
            coded=np.ascontiguousarray(built.coded_transposed),
            storer=built.storer.copy(),
        )
        # The raw matrix is decoded lazily from the coded one; decode
        # must be the exact inverse of the build-time encoding.
        assert np.array_equal(wrapped.next_hop, built.next_hop)
        assert np.array_equal(wrapped.storer, built.storer)
        assert wrapped.sentinel == built.sentinel
        assert wrapped.n_nodes == built.n_nodes

    def test_rejects_wrong_dtype(self):
        overlay = Overlay.build(CONFIG)
        built = NextHopTable(overlay)
        with pytest.raises(ConfigurationError, match="dtype|must use"):
            NextHopTable.from_arrays(
                overlay,
                coded=built.coded_transposed.astype(np.int64),
                storer=built.storer.copy(),
            )

    def test_rejects_wrong_shape(self):
        overlay = Overlay.build(CONFIG)
        built = NextHopTable(overlay)
        with pytest.raises(ConfigurationError, match="shape"):
            NextHopTable.from_arrays(
                overlay,
                coded=np.ascontiguousarray(built.coded_transposed[:-1]),
                storer=built.storer.copy(),
            )


class TestEpochTableCache:
    def test_miss_then_hit_with_event_kinds(self, tmp_path, monkeypatch):
        from repro.perf.table_cache import (
            EPOCH_TABLE_LOG_ENV,
            EpochTableCache,
        )

        log = tmp_path / "epochs.log"
        monkeypatch.setenv(EPOCH_TABLE_LOG_ENV, str(log))
        cache = EpochTableCache()
        table = np.arange(8, dtype=np.uint16)
        built = cache.get("fp-1", lambda: table, patched=True)
        assert built is table
        assert cache.get("fp-1", lambda: 1 / 0) is table
        cache.get("fp-2", lambda: table.copy(), patched=False)
        assert cache.stats.snapshot() == {
            "patches": 1, "rebuilds": 1, "hits": 1, "shared": 0,
        }
        assert cache.stats.resolutions == 3
        events = [line.split()[2] for line in log.read_text().splitlines()]
        assert events == ["patch", "hit", "rebuild"]
        assert "fp-1" in cache and len(cache) == 2

    def test_clear_resets_tables_and_stats(self):
        from repro.perf.table_cache import EpochTableCache

        cache = EpochTableCache()
        cache.get("fp", lambda: np.zeros(4, dtype=np.uint16))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.resolutions == 0

    def test_clear_caches_covers_every_perf_cache(self):
        """The backends-level clear_caches drops all three caches."""
        from repro.backends import run_simulation
        from repro.backends.config import FastSimulationConfig
        from repro.perf.table_cache import (
            global_epoch_table_cache,
            global_table_cache,
        )

        run_simulation(FastSimulationConfig(
            n_nodes=60, bits=10, n_files=16, batch_files=4,
            scenario="churn:rate=0.2,recompute=true",
        ))
        assert len(global_table_cache()) > 0
        assert len(global_epoch_table_cache()) > 0
        clear_caches()
        assert len(global_table_cache()) == 0
        assert len(global_epoch_table_cache()) == 0
        assert global_epoch_table_cache().stats.resolutions == 0

    def test_lru_bound_evicts_oldest(self):
        from repro.perf.table_cache import EpochTableCache

        cache = EpochTableCache(max_tables=2)
        cache.get("a", lambda: np.zeros(2, dtype=np.uint16))
        cache.get("b", lambda: np.ones(2, dtype=np.uint16))
        cache.get("a", lambda: 1 / 0)  # hit refreshes recency
        cache.get("c", lambda: np.full(2, 2, dtype=np.uint16))
        assert "b" not in cache  # least recently used
        assert "a" in cache and "c" in cache
        assert len(cache) == 2
        with pytest.raises(ValueError):
            EpochTableCache(max_tables=0)

    def test_default_bound_is_a_bytes_budget(self):
        from repro.perf.table_cache import EpochTableCache

        cache = EpochTableCache()
        assert cache.max_tables is None
        assert cache.max_bytes == EpochTableCache.DEFAULT_MAX_BYTES
        # The budget equals the historical 256-table bound at the
        # paper's 16-bit / uint16 shape...
        table_bytes = (1 << 16) * 2
        assert cache.max_bytes // table_bytes == (
            EpochTableCache.DEFAULT_MAX_TABLES
        )
        # ...so wider spaces keep the same resident memory by holding
        # proportionally fewer tables, instead of 64x the bytes.
        wide_table_bytes = (1 << 22) * 2
        assert cache.max_bytes // wide_table_bytes < 8

    def test_bytes_budget_evicts_lru_and_tracks_nbytes(self):
        from repro.perf.table_cache import EpochTableCache

        table = lambda fill: np.full(16, fill, np.uint16)  # noqa: E731
        cache = EpochTableCache(max_bytes=3 * 32)
        for name in "abc":
            cache.get(name, lambda: table(1))
        assert len(cache) == 3 and cache.nbytes == 96
        cache.get("a", lambda: 1 / 0)  # refresh recency
        cache.get("d", lambda: table(2))
        assert "b" not in cache
        assert len(cache) == 3 and cache.nbytes == 96

    def test_oversized_table_still_cached(self):
        # A single table above the budget must not evict itself: the
        # live plan needs it, and an empty cache helps nobody.
        from repro.perf.table_cache import EpochTableCache

        cache = EpochTableCache(max_bytes=8)
        big = np.zeros(64, dtype=np.uint16)
        assert cache.get("big", lambda: big) is big
        assert "big" in cache and len(cache) == 1

    def test_configure_rebounds_in_place_keeping_contents(self):
        from repro.perf.table_cache import (
            configure_epoch_table_cache,
            global_epoch_table_cache,
        )

        clear_caches()
        cache = global_epoch_table_cache()
        for name in "abcd":
            cache.get(name, lambda: np.zeros(4, dtype=np.uint16))
        configured = configure_epoch_table_cache(max_tables=2)
        assert configured is cache
        assert cache.max_tables == 2 and cache.max_bytes is None
        assert len(cache) == 2 and "d" in cache  # newest survive
        hits_before = cache.stats.hits
        cache.get("d", lambda: 1 / 0)
        assert cache.stats.hits == hits_before + 1
        # Idempotent re-application neither evicts nor resets.
        assert configure_epoch_table_cache(max_tables=2) is cache
        assert len(cache) == 2
        # Back to the default bytes budget.
        configure_epoch_table_cache()
        assert cache.max_tables is None
        assert cache.max_bytes == cache.DEFAULT_MAX_BYTES
        with pytest.raises(ValueError):
            configure_epoch_table_cache(max_tables=0)
        clear_caches()

    def test_sweep_epoch_cache_tables_reaches_workers(self, monkeypatch):
        """--epoch-cache-tables re-bounds the executing process's cache
        (serial path; the process pool ships the same value)."""
        from repro.backends.config import FastSimulationConfig
        from repro.perf.table_cache import global_epoch_table_cache
        from repro.sweeps import SweepSpec, run_sweep

        clear_caches()
        spec = SweepSpec(
            base=FastSimulationConfig(
                n_nodes=60, bits=10, n_files=16, batch_files=4,
            ),
            scenarios=("churn:rate=0.2,recompute=true",),
            backends=("fast",), seeds=2,
        )
        result = run_sweep(spec, jobs=1, epoch_cache_tables=8)
        assert result.executed == 2
        cache = global_epoch_table_cache()
        assert cache.max_tables == 8
        assert len(cache) <= 8
        # The second replica amortized through the (re-bounded) cache
        # rather than recomputing every epoch.
        assert cache.stats.hits > 0
        # Restore the default bound for the rest of the suite.
        from repro.perf.table_cache import configure_epoch_table_cache

        configure_epoch_table_cache()
        clear_caches()
