"""Unit tests for the bounded-memory online aggregates."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.streaming import QuantileSketch, StreamingAggregator
from repro.errors import ConfigurationError


def fake_result(addresses, *, forwarded=None, first_hop=None,
                income=None, expenditure=None, files=0, chunks=0,
                total_hops=0, local_hits=0, fallbacks=0, cache_hits=0,
                unavailable=0, hop_histogram=None, latency_ms=None):
    """A SimulationResult stand-in with just the absorbed fields."""
    n = len(addresses)
    return SimpleNamespace(
        node_addresses=np.asarray(addresses, dtype=np.int64),
        forwarded=(np.zeros(n, dtype=np.int64)
                   if forwarded is None else np.asarray(forwarded)),
        first_hop=(np.zeros(n, dtype=np.int64)
                   if first_hop is None else np.asarray(first_hop)),
        income=(np.zeros(n) if income is None
                else np.asarray(income, dtype=np.float64)),
        expenditure=(np.zeros(n) if expenditure is None
                     else np.asarray(expenditure, dtype=np.float64)),
        files=files, chunks=chunks, total_hops=total_hops,
        local_hits=local_hits, fallbacks=fallbacks,
        cache_hits=cache_hits, unavailable=unavailable,
        hop_histogram=dict(hop_histogram or {}),
        latency_ms=latency_ms,
    )


ADDRS = np.array([3, 17, 42, 99], dtype=np.int64)


class TestQuantileSketch:
    def test_quantiles_within_relative_error(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(25.0, size=20_000) + 0.5
        sketch = QuantileSketch(alpha=0.01)
        sketch.add(samples)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= 0.021 * exact

    def test_merge_equals_single_sketch(self):
        rng = np.random.default_rng(11)
        a_samples = rng.exponential(10.0, size=5_000)
        b_samples = rng.exponential(40.0, size=5_000)
        whole = QuantileSketch()
        whole.add(a_samples)
        whole.add(b_samples)
        a = QuantileSketch()
        a.add(a_samples)
        b = QuantileSketch()
        b.add(b_samples)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.zero_count == whole.zero_count
        assert merged.buckets == whole.buckets
        assert merged.quantile(0.95) == whole.quantile(0.95)

    def test_zero_samples_share_a_bucket(self):
        sketch = QuantileSketch()
        sketch.add([0.0, 0.0, 5.0])
        assert sketch.count == 3
        assert sketch.zero_count == 2
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) > 0.0

    def test_gini_tracks_exact_gini(self):
        from repro.core.fairness import gini

        rng = np.random.default_rng(3)
        samples = rng.pareto(2.0, size=10_000) + 0.1
        sketch = QuantileSketch(alpha=0.01)
        sketch.add(samples)
        assert abs(sketch.gini() - gini(samples)) < 0.02

    def test_uniform_samples_have_near_zero_gini(self):
        sketch = QuantileSketch()
        sketch.add(np.full(1000, 12.5))
        assert sketch.gini() < 0.01

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.gini() == 0.0
        assert sketch.summary() == {"count": 0}
        with pytest.raises(ConfigurationError, match="empty"):
            sketch.quantile(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError, match="accuracy"):
            QuantileSketch(alpha=1.5)
        sketch = QuantileSketch()
        with pytest.raises(ConfigurationError, match="non-negative"):
            sketch.add([1.0, -2.0])
        with pytest.raises(ConfigurationError, match="quantile"):
            sketch.quantile(1.5)
        with pytest.raises(ConfigurationError, match="accuracies"):
            sketch.merge(QuantileSketch(alpha=0.05))

    def test_summary_has_quantile_keys(self):
        sketch = QuantileSketch()
        sketch.add([1.0, 2.0, 3.0, 4.0])
        summary = sketch.summary()
        assert summary["count"] == 4
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestStreamingAggregator:
    def test_absorb_accumulates_everything(self):
        agg = StreamingAggregator(ADDRS)
        agg.absorb(fake_result(
            ADDRS, forwarded=[1, 0, 2, 0], first_hop=[0, 1, 0, 1],
            income=[0.5, 0.0, 0.25, 0.0],
            expenditure=[0.0, 0.5, 0.0, 0.25],
            files=2, chunks=6, total_hops=9, local_hits=1,
            fallbacks=1, hop_histogram={1: 3, 2: 3},
            latency_ms=np.array([5.0, 7.5, 10.0]),
        ))
        agg.absorb(fake_result(
            ADDRS, forwarded=[0, 3, 0, 0], first_hop=[1, 0, 1, 0],
            income=[0.0, 0.75, 0.0, 0.0],
            expenditure=[0.75, 0.0, 0.0, 0.0],
            files=1, chunks=4, total_hops=5, cache_hits=2,
            unavailable=1, hop_histogram={1: 1, 3: 2},
        ))
        assert agg.epochs == 2
        assert agg.files == 3
        assert agg.chunks == 10
        assert agg.total_hops == 14
        assert agg.local_hits == 1
        assert agg.fallbacks == 1
        assert agg.cache_hits == 2
        assert agg.unavailable == 1
        assert agg.hop_histogram == {1: 4, 2: 3, 3: 2}
        np.testing.assert_array_equal(agg.forwarded, [1, 3, 2, 0])
        np.testing.assert_array_equal(agg.first_hop, [1, 1, 1, 1])
        np.testing.assert_array_equal(agg.income, [0.5, 0.75, 0.25, 0.0])
        assert agg.latency.count == 3
        assert agg.mean_hops == 14 / 9
        assert agg.availability == 0.9

    def test_absorb_rejects_foreign_overlay(self):
        agg = StreamingAggregator(ADDRS)
        other = fake_result(np.array([1, 2, 3, 4], dtype=np.int64))
        with pytest.raises(ConfigurationError, match="overlay"):
            agg.absorb(other)

    def test_merge_is_a_new_aggregator(self):
        a = StreamingAggregator(ADDRS)
        a.absorb(fake_result(ADDRS, chunks=5, income=[1, 0, 0, 0]))
        b = StreamingAggregator(ADDRS)
        b.absorb(fake_result(ADDRS, chunks=3, income=[0, 2, 0, 0]))
        merged = a.merge(b)
        assert merged is not a and merged is not b
        assert merged.chunks == 8
        assert merged.epochs == 2
        np.testing.assert_array_equal(merged.income, [1, 2, 0, 0])
        # inputs untouched
        assert a.chunks == 5 and b.chunks == 3

    def test_merge_rejects_foreign_overlay(self):
        a = StreamingAggregator(ADDRS)
        b = StreamingAggregator(np.array([9, 8, 7, 6], dtype=np.int64))
        with pytest.raises(ConfigurationError, match="overlay"):
            a.merge(b)

    def test_empty_metrics_are_defined(self):
        agg = StreamingAggregator(ADDRS)
        assert agg.mean_hops == 0.0
        assert agg.availability == 1.0
        snapshot = agg.snapshot()
        assert snapshot["epochs"] == 0
        assert "latency_ms" not in snapshot

    def test_summary_drops_epochs_and_adds_extras(self):
        agg = StreamingAggregator(ADDRS)
        agg.absorb(fake_result(
            ADDRS, forwarded=[2, 1, 0, 0], first_hop=[1, 1, 1, 1],
            chunks=4, total_hops=6, hop_histogram={1: 2, 2: 2},
        ))
        summary = agg.summary()
        assert "epochs" not in summary
        assert "epochs" in agg.snapshot()
        assert summary["hop_histogram"] == {"1": 2, "2": 2}
        assert summary["mean_forwarded"] == 0.75
        assert "f1_gini" in summary

    def test_snapshot_includes_latency_when_present(self):
        agg = StreamingAggregator(ADDRS)
        agg.absorb(fake_result(
            ADDRS, chunks=2, latency_ms=np.array([4.0, 8.0])
        ))
        assert agg.snapshot()["latency_ms"]["count"] == 2

    def test_matches_result(self):
        result = fake_result(
            ADDRS, forwarded=[1, 1, 0, 0], first_hop=[0, 0, 1, 1],
            income=[0.5, 0.5, 0.0, 0.0], chunks=2, total_hops=4,
            hop_histogram={2: 2},
        )
        agg = StreamingAggregator(ADDRS).absorb(result)
        assert agg.matches_result(result)
        agg.chunks += 1
        assert not agg.matches_result(result)
