"""Unit tests for summary statistics (repro.analysis.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    mean_confidence_interval,
    summarize,
)
from repro.errors import ConfigurationError


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_single_value_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_str_contains_fields(self):
        assert "median" in str(summarize([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        values = np.random.default_rng(1).normal(10, 2, size=50)
        mean, low, high = mean_confidence_interval(values)
        assert low < mean < high
        assert mean == pytest.approx(values.mean())

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(2)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        _, low_s, high_s = mean_confidence_interval(small)
        _, low_l, high_l = mean_confidence_interval(large)
        assert (high_l - low_l) < (high_s - low_s)

    def test_single_observation_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)
