"""Unit tests for seed-sensitivity analysis (repro.analysis.sensitivity)."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import compare_configs, replicate
from repro.errors import ConfigurationError
from repro.backends.fast import FastSimulationConfig

CONFIG = FastSimulationConfig(
    n_nodes=100, bits=12, bucket_size=4, originator_share=0.5,
    n_files=40, file_min=5, file_max=20, overlay_seed=6,
)


class TestReplicate:
    def test_estimates_for_every_metric(self):
        estimates = replicate(
            CONFIG,
            {"f2": lambda r: r.f2_gini(), "hops": lambda r: r.mean_hops},
            n_replications=3,
        )
        assert set(estimates) == {"f2", "hops"}
        for estimate in estimates.values():
            assert estimate.low <= estimate.mean <= estimate.high
            assert len(estimate.samples) == 3

    def test_samples_vary_across_seeds(self):
        estimates = replicate(
            CONFIG, {"f2": lambda r: r.f2_gini()}, n_replications=3,
        )
        assert len(set(estimates["f2"].samples)) > 1

    def test_deterministic(self):
        a = replicate(CONFIG, {"f2": lambda r: r.f2_gini()},
                      n_replications=3)
        b = replicate(CONFIG, {"f2": lambda r: r.f2_gini()},
                      n_replications=3)
        assert a["f2"].samples == b["f2"].samples

    def test_too_few_replications_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(CONFIG, {"f2": lambda r: r.f2_gini()},
                      n_replications=1)

    def test_str_format(self):
        estimates = replicate(CONFIG, {"f2": lambda r: r.f2_gini()},
                              n_replications=2)
        assert "f2 = " in str(estimates["f2"])


class TestCompareConfigs:
    def test_k20_reduction_positive_and_robust_direction(self):
        from dataclasses import replace

        treatment = replace(CONFIG, bucket_size=20)
        outcome = compare_configs(
            CONFIG, treatment, lambda r: r.f2_gini(),
            metric_name="F2", n_replications=3,
        )
        assert outcome["metric"] == "F2"
        assert len(outcome["reductions"]) == 3
        assert outcome["mean_reduction"] > 0.0

    def test_self_comparison_is_zero(self):
        outcome = compare_configs(
            CONFIG, CONFIG, lambda r: r.f2_gini(),
            n_replications=2,
        )
        assert outcome["mean_reduction"] == pytest.approx(0.0, abs=1e-12)
        assert not outcome["robust"]
