"""Unit tests for ASCII rendering (repro.analysis.plots)."""

from __future__ import annotations

import pytest

from repro.analysis.histogram import histogram
from repro.analysis.plots import ascii_bars, ascii_histogram, ascii_lorenz
from repro.core.fairness import lorenz_curve
from repro.errors import ConfigurationError


class TestAsciiLorenz:
    def test_contains_legend_with_gini(self):
        curves = {"k=4": lorenz_curve([1.0, 5.0, 10.0])}
        rendered = ascii_lorenz(curves)
        assert "k=4" in rendered
        assert "Gini" in rendered

    def test_multiple_series_distinct_glyphs(self):
        curves = {
            "a": lorenz_curve([1.0, 5.0]),
            "b": lorenz_curve([1.0, 1.0]),
        }
        rendered = ascii_lorenz(curves)
        assert "*" in rendered and "o" in rendered

    def test_canvas_dimensions(self):
        curves = {"a": lorenz_curve([1.0, 2.0])}
        rendered = ascii_lorenz(curves, width=21, height=7)
        plot_lines = [
            line for line in rendered.splitlines()
            if line.startswith("|")
        ]
        assert len(plot_lines) == 7
        assert all(len(line) == 22 for line in plot_lines)

    def test_no_curves_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_lorenz({})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_lorenz({"a": lorenz_curve([1.0])}, width=5, height=3)


class TestAsciiHistogram:
    def test_one_line_per_bin_plus_header(self):
        hist = histogram([1, 2, 3], bins=4)
        rendered = ascii_histogram(hist)
        assert len(rendered.splitlines()) == 5

    def test_counts_shown(self):
        hist = histogram([1, 1, 1], bins=1)
        assert " 3" in ascii_histogram(hist)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram(histogram([1.0], bins=1), width=0)


class TestAsciiBars:
    def test_labels_and_values_rendered(self):
        rendered = ascii_bars({"k=4": 0.5, "k=20": 0.25})
        assert "k=4" in rendered
        assert "0.5000" in rendered

    def test_longest_bar_for_largest_value(self):
        rendered = ascii_bars({"small": 1.0, "big": 2.0}, width=10)
        lines = dict(
            (line.split()[0], line.count("#"))
            for line in rendered.splitlines()
        )
        assert lines["big"] == 10
        assert lines["small"] == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_bars({})
