"""Unit tests for table rendering (repro.analysis.reports)."""

from __future__ import annotations

import pytest

from repro.analysis.reports import Table
from repro.errors import ConfigurationError


@pytest.fixture()
def table() -> Table:
    table = Table(title="Demo", headers=["name", "value"])
    table.add_row("alpha", 1.23456)
    table.add_row("beta", 7)
    return table


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ConfigurationError):
            Table(title="x", headers=[])

    def test_row_width_enforced(self, table):
        with pytest.raises(ConfigurationError, match="columns"):
            table.add_row("only-one")

    def test_text_rendering(self, table):
        text = table.to_text()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.2346" in text  # floats rendered to 4 decimals
        assert "7" in text

    def test_text_alignment(self, table):
        lines = table.to_text().splitlines()
        header, separator = lines[1], lines[2]
        assert len(separator) >= len(header.rstrip())

    def test_markdown_rendering(self, table):
        markdown = table.to_markdown()
        assert markdown.startswith("### Demo")
        assert "| name | value |" in markdown
        assert "| alpha | 1.2346 |" in markdown

    def test_csv_rendering(self, table):
        csv = table.to_csv()
        assert csv.splitlines()[0] == "name,value"
        assert "alpha,1.2346" in csv

    def test_csv_quoting(self):
        table = Table(title="q", headers=["a"])
        table.add_row('with,comma "and quotes"')
        assert '"with,comma ""and quotes"""' in table.to_csv()

    def test_save_csv(self, table, tmp_path):
        path = tmp_path / "table.csv"
        table.save_csv(path)
        assert path.read_text().startswith("name,value")

    def test_empty_table_renders(self):
        table = Table(title="empty", headers=["a", "b"])
        assert "empty" in table.to_text()
