"""Unit tests for histograms (repro.analysis.histogram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import Histogram, area_ratio, histogram
from repro.errors import ConfigurationError


class TestHistogram:
    def test_counts_preserved(self):
        hist = histogram([1, 1, 2, 5, 9], bins=3, value_range=(0, 9))
        assert hist.total == 5
        assert hist.n_bins == 3
        assert hist.counts.sum() == 5

    def test_pinned_range_shared_bins(self):
        a = histogram([1, 2], bins=4, value_range=(0, 8))
        b = histogram([7, 8], bins=4, value_range=(0, 8))
        assert np.array_equal(a.bin_edges, b.bin_edges)

    def test_bin_centers(self):
        hist = histogram([0, 10], bins=2, value_range=(0, 10))
        assert hist.bin_centers().tolist() == [2.5, 7.5]

    def test_mode_bin(self):
        hist = histogram([1, 1, 1, 9], bins=2, value_range=(0, 10))
        low, high = hist.mode_bin()
        assert low == 0.0 and high == 5.0

    def test_frequencies_sum_to_one(self):
        hist = histogram([1, 2, 3, 4], bins=2)
        assert hist.frequencies().sum() == pytest.approx(1.0)

    def test_rows(self):
        hist = histogram([1, 9], bins=2, value_range=(0, 10))
        assert hist.rows() == [(0.0, 5.0, 1), (5.0, 10.0, 1)]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram([], bins=3)

    def test_bad_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram([1.0], bins=0)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(bin_edges=np.array([0.0, 1.0]),
                      counts=np.array([1, 2]))


class TestAreaRatio:
    def test_equals_total_ratio(self):
        assert area_ratio([2, 2], [1, 1]) == pytest.approx(2.0)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ConfigurationError):
            area_ratio([1], [0])
