"""Unit tests for latency modelling (repro.analysis.latency)."""

from __future__ import annotations

import pytest

from repro.analysis.latency import LatencyModel, latency_distribution
from repro.errors import ConfigurationError


class TestLatencyModel:
    def test_round_trip_formula(self):
        model = LatencyModel(per_hop_ms=30.0, base_ms=5.0)
        assert model.retrieval_ms(0) == 5.0
        assert model.retrieval_ms(3) == 5.0 + 2 * 3 * 30.0

    def test_negative_hops_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().retrieval_ms(-1)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(per_hop_ms=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(base_ms=-1.0)


class TestLatencyDistribution:
    def test_single_bucket(self):
        dist = latency_distribution({2: 100})
        expected = LatencyModel().retrieval_ms(2)
        assert dist.mean_ms == expected
        assert dist.p50_ms == expected
        assert dist.p99_ms == expected
        assert dist.chunks == 100

    def test_weighted_mean(self):
        model = LatencyModel(per_hop_ms=10.0, base_ms=0.0)
        dist = latency_distribution({1: 50, 3: 50}, model)
        assert dist.mean_ms == pytest.approx((20.0 + 60.0) / 2)

    def test_percentiles_ordered(self):
        dist = latency_distribution({0: 10, 1: 60, 2: 20, 5: 10})
        assert dist.p50_ms <= dist.p90_ms <= dist.p99_ms <= dist.max_ms

    def test_p99_hits_the_tail(self):
        model = LatencyModel(per_hop_ms=10.0, base_ms=0.0)
        # 2% of chunks take 9 hops, so the 99th percentile is in the tail.
        dist = latency_distribution({1: 980, 9: 20}, model)
        assert dist.p90_ms == 20.0
        assert dist.p99_ms == 180.0

    def test_p99_excludes_a_sub_percent_tail(self):
        model = LatencyModel(per_hop_ms=10.0, base_ms=0.0)
        # Exactly 99% of chunks are <= 20ms, so p99 is 20ms.
        dist = latency_distribution({1: 990, 9: 10}, model)
        assert dist.p99_ms == 20.0
        assert dist.max_ms == 180.0

    def test_empty_histogram_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_distribution({})

    def test_str_format(self):
        assert "p99" in str(latency_distribution({1: 10}))


class TestLatencyExperiment:
    def test_larger_k_lower_latency(self):
        from repro.experiments.extensions import run_latency

        report = run_latency(
            n_files=150, n_nodes=200, bucket_sizes=(2, 20)
        )
        series = report.data["series"]
        assert series[20]["mean_ms"] < series[2]["mean_ms"]
        assert series[20]["p99_ms"] <= series[2]["p99_ms"]
