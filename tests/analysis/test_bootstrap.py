"""Unit tests for the Gini bootstrap interval (repro.analysis.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_gini_interval
from repro.core.fairness import gini
from repro.errors import ConfigurationError


class TestBootstrapGini:
    def test_point_estimate_is_the_sample_gini(self, rng):
        values = rng.random(200)
        point, low, high = bootstrap_gini_interval(values, seed=1)
        assert point == gini(values)
        assert low <= point <= high

    def test_interval_narrows_with_population(self):
        rng = np.random.default_rng(2)
        small = rng.random(30)
        large = rng.random(3000)
        _, low_s, high_s = bootstrap_gini_interval(small, n_resamples=300)
        _, low_l, high_l = bootstrap_gini_interval(large, n_resamples=300)
        assert (high_l - low_l) < (high_s - low_s)

    def test_deterministic_by_seed(self, rng):
        values = rng.random(100)
        a = bootstrap_gini_interval(values, seed=5)
        b = bootstrap_gini_interval(values, seed=5)
        assert a == b

    def test_equal_values_give_zero_interval(self):
        point, low, high = bootstrap_gini_interval([3.0] * 50)
        assert point == 0.0
        assert low == 0.0
        assert high == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_gini_interval([1.0])
        with pytest.raises(ConfigurationError):
            bootstrap_gini_interval([1.0, 2.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_gini_interval([1.0, 2.0], n_resamples=5)

    def test_distinguishes_different_configurations(self):
        # Per-node incomes from clearly different inequality regimes
        # produce non-overlapping bootstrap intervals.
        rng = np.random.default_rng(3)
        equalish = rng.uniform(0.9, 1.1, size=400)
        skewed = rng.pareto(1.5, size=400)
        _, _, high_eq = bootstrap_gini_interval(equalish, n_resamples=300)
        _, low_sk, _ = bootstrap_gini_interval(skewed, n_resamples=300)
        assert high_eq < low_sk
