"""Unit tests for routing-table rendering (repro.analysis.table_viz)."""

from __future__ import annotations

from repro.analysis.table_viz import (
    render_bucket_occupancy,
    render_routing_table,
)
from repro.kademlia.address import AddressSpace
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.table import RoutingTable


def make_table():
    space = AddressSpace(8)
    table = RoutingTable(0b01011011, space, BucketLimits.uniform(4))
    # The paper's Fig. 3 example peers (owner 0b01011011).
    for peer in (0b10100010, 0b11101010, 0b00100010, 0b01101010,
                 0b01001010, 0b01010100):
        table.add(peer)
    return table


class TestRenderRoutingTable:
    def test_mentions_owner_and_buckets(self):
        rendered = render_routing_table(make_table())
        assert "01011011" in rendered
        assert "bucket  0" in rendered

    def test_every_peer_listed_with_address(self):
        table = make_table()
        rendered = render_routing_table(table)
        for peer in table.peers():
            assert f"(={peer})" in rendered

    def test_prefix_separation_matches_bucket(self):
        table = make_table()
        rendered = render_routing_table(table)
        # Peer 0b01101010 shares 2 bits with the owner: prefix "01".
        assert "01|1|01010" in rendered

    def test_peer_count_reported(self):
        table = make_table()
        assert f"{len(table)} peers" in render_routing_table(table)

    def test_max_buckets_truncates(self):
        table = make_table()
        rendered = render_routing_table(table, max_buckets=1)
        assert "bucket  1" not in rendered


class TestRenderBucketOccupancy:
    def test_one_line_per_bucket(self):
        table = make_table()
        rendered = render_bucket_occupancy(table)
        assert len(rendered.splitlines()) == table.space.bits + 1

    def test_counts_shown(self):
        rendered = render_bucket_occupancy(make_table())
        assert "1/4" in rendered

    def test_overflowed_bucket_marked(self):
        space = AddressSpace(8)
        table = RoutingTable(0, space, BucketLimits.uniform(1))
        table.add(0b10000000)
        table.add_unbounded(0b11000000)  # neighborhood overflow
        rendered = render_bucket_occupancy(table)
        assert "2/1+" in rendered
