"""Unit tests for the BitTorrent baseline (repro.baselines.tit_for_tat)."""

from __future__ import annotations

import pytest

from repro.baselines.tit_for_tat import TitForTatConfig, TitForTatSwarm
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def finished_swarm() -> TitForTatSwarm:
    swarm = TitForTatSwarm(TitForTatConfig(
        n_peers=30, n_pieces=60, seed=3, max_rounds=3000,
    ))
    swarm.run()
    return swarm


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_peers": 1},
        {"n_pieces": 0},
        {"unchoke_slots": 0},
        {"peer_view": 0},
        {"seed_fraction": 1.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TitForTatConfig(**kwargs)


class TestSwarmDynamics:
    def test_swarm_completes(self, finished_swarm):
        assert finished_swarm.completion_fraction() == 1.0

    def test_conservation(self, finished_swarm):
        # Every downloaded piece was uploaded by someone.
        assert sum(finished_swarm.incomes()) == sum(
            finished_swarm.contributions()
        )

    def test_initial_seeds_download_nothing(self):
        config = TitForTatConfig(n_peers=20, n_pieces=30,
                                 seed_fraction=0.2, seed=1)
        swarm = TitForTatSwarm(config)
        swarm.run()
        n_seeds = max(1, round(0.2 * 20))
        for peer in swarm.peers[:n_seeds]:
            assert peer.downloaded == 0
            assert peer.uploaded > 0

    def test_leechers_download_full_file(self, finished_swarm):
        n_pieces = finished_swarm.config.n_pieces
        for peer in finished_swarm.peers:
            if peer.downloaded:
                assert peer.downloaded == n_pieces

    def test_deterministic(self):
        config = TitForTatConfig(n_peers=20, n_pieces=30, seed=9)
        a = TitForTatSwarm(config)
        a.run()
        b = TitForTatSwarm(config)
        b.run()
        assert a.incomes() == b.incomes()
        assert a.contributions() == b.contributions()

    def test_round_cap_respected(self):
        swarm = TitForTatSwarm(TitForTatConfig(
            n_peers=30, n_pieces=500, max_rounds=5, seed=2,
        ))
        assert swarm.run() <= 5


class TestChoking:
    def test_seeds_never_interested(self):
        swarm = TitForTatSwarm(TitForTatConfig(n_peers=10, n_pieces=10))
        seed_peer = swarm.peers[0]
        other = swarm.peers[1]
        assert not swarm._wants_from(seed_peer, other)

    def test_reciprocation_favoured(self):
        # A peer that uploaded to us last round outranks one that did not.
        swarm = TitForTatSwarm(TitForTatConfig(
            n_peers=10, n_pieces=20, unchoke_slots=1,
            optimistic_interval=1000, seed=4,
        ))
        uploader = swarm.peers[0]
        reciprocator, stranger = 1, 2
        uploader.neighbors = (reciprocator, stranger)
        # Both are interested leechers.
        swarm.peers[reciprocator].pieces = set()
        swarm.peers[stranger].pieces = set()
        swarm._received_last_round[0] = {reciprocator: 3}
        unchoked = swarm._unchoked_by(uploader, round_index=1)
        assert unchoked[0] == reciprocator
