"""Unit tests for free-rider models (repro.baselines.freerider)."""

from __future__ import annotations

import pytest

from repro.baselines.freerider import (
    FreeRiderPlan,
    apply_free_riders,
    select_free_riders,
)
from repro.core.incentives import SwapIncentives
from repro.core.pricing import FlatPricing
from repro.errors import ConfigurationError
from repro.kademlia.routing import Route


class TestPlan:
    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            FreeRiderPlan(fraction=1.5)
        with pytest.raises(ConfigurationError):
            FreeRiderPlan(fraction=0.5, pay_probability=-0.1)


class TestSelection:
    def test_count_follows_fraction(self):
        nodes = list(range(100))
        riders = select_free_riders(nodes, FreeRiderPlan(fraction=0.3))
        assert len(riders) == 30
        assert set(riders) <= set(nodes)

    def test_deterministic_by_seed(self):
        nodes = list(range(100))
        a = select_free_riders(nodes, FreeRiderPlan(fraction=0.2, seed=1))
        b = select_free_riders(nodes, FreeRiderPlan(fraction=0.2, seed=1))
        assert a == b

    def test_zero_fraction_selects_nobody(self):
        assert select_free_riders([1, 2], FreeRiderPlan(fraction=0.0)) == []

    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            select_free_riders([], FreeRiderPlan(fraction=0.5))


class TestApply:
    def test_full_freeriders_always_default(self):
        incentives = SwapIncentives(FlatPricing(1.0))
        riders = apply_free_riders(
            incentives, [1, 2, 3, 4], FreeRiderPlan(fraction=1.0)
        )
        assert set(riders) == {1, 2, 3, 4}
        incentives.process_route(Route(target=9, path=(1, 2, 3)))
        assert incentives.defaults[1] == 1
        assert incentives.incomes([2]) == [0.0]

    def test_selective_freeriders_pay_until_budget(self):
        incentives = SwapIncentives(FlatPricing(1.0))
        apply_free_riders(
            incentives, [1],
            FreeRiderPlan(fraction=1.0, pay_probability=0.5),
            expected_spend=4.0,
        )
        # Budget of 2.0 covers two flat-priced payments, then defaults.
        for _ in range(3):
            incentives.process_route(Route(target=9, path=(1, 2, 3)))
        assert incentives.defaults[1] == 1
        assert incentives.incomes([2]) == [2.0]
