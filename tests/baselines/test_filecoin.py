"""Unit tests for the Filecoin-style baseline (repro.baselines.filecoin)."""

from __future__ import annotations

import pytest

from repro.baselines.filecoin import FilecoinConfig, FilecoinMechanism
from repro.errors import ConfigurationError
from repro.kademlia.routing import Route


class TestConfig:
    def test_bad_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            FilecoinConfig(epoch_length=0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            FilecoinMechanism({1: -2.0})


class TestRetrievalPayments:
    def test_server_earns_per_chunk(self):
        mechanism = FilecoinMechanism(
            {1: 0.0, 2: 0.0, 3: 0.0},
            FilecoinConfig(block_reward=0.0, retrieval_price=2.0),
        )
        mechanism.process_route(Route(target=9, path=(1, 2, 3)))
        assert mechanism.incomes([1, 2, 3]) == [0.0, 0.0, 2.0]
        assert mechanism.served_counts([3]) == [1]

    def test_forwarders_counted_as_contribution(self):
        mechanism = FilecoinMechanism({}, FilecoinConfig(block_reward=0.0))
        mechanism.process_route(Route(target=9, path=(1, 2, 3)))
        assert mechanism.contributions([1, 2, 3]) == [0.0, 1.0, 1.0]

    def test_local_hit_earns_nothing(self):
        mechanism = FilecoinMechanism({}, FilecoinConfig(block_reward=0.0))
        mechanism.process_route(Route(target=9, path=(1,)))
        assert mechanism.incomes([1]) == [0.0]


class TestBlockRewards:
    def test_epochs_fire_on_schedule(self):
        mechanism = FilecoinMechanism(
            {1: 1.0}, FilecoinConfig(epoch_length=10, block_reward=5.0),
        )
        for i in range(25):
            mechanism.process_route(Route(target=i % 7, path=(1, 2)))
        assert mechanism.epochs_elapsed == 2

    def test_rewards_proportional_to_power(self):
        mechanism = FilecoinMechanism(
            {1: 9.0, 2: 1.0},
            FilecoinConfig(epoch_length=1, block_reward=1.0,
                           retrieval_price=0.0, seed=5),
        )
        for i in range(2000):
            mechanism.process_route(Route(target=i % 31, path=(1, 2)))
        wins = mechanism.blocks_won
        assert wins[1] > wins[2] * 4  # expected 9:1

    def test_zero_total_power_pays_nobody(self):
        mechanism = FilecoinMechanism(
            {1: 0.0}, FilecoinConfig(epoch_length=1, block_reward=5.0,
                                     retrieval_price=0.0),
        )
        mechanism.process_route(Route(target=3, path=(1, 2)))
        assert mechanism.incomes([1, 2]) == [0.0, 0.0]

    def test_zero_block_reward_skips_sampling(self):
        mechanism = FilecoinMechanism(
            {1: 5.0}, FilecoinConfig(epoch_length=1, block_reward=0.0),
        )
        mechanism.process_route(Route(target=3, path=(1, 2)))
        assert mechanism.blocks_won == {}
