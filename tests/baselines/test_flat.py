"""Unit tests for the reference mechanisms (repro.baselines.flat)."""

from __future__ import annotations

import pytest

from repro.baselines.flat import (
    EqualSplitMechanism,
    NoRewardMechanism,
    PerChunkRewardMechanism,
)
from repro.core.fairness import evaluate_fairness
from repro.errors import ConfigurationError
from repro.kademlia.routing import Route


ROUTES = [
    Route(target=1, path=(1, 2, 3)),
    Route(target=2, path=(4, 2)),
    Route(target=3, path=(1, 3, 2, 4)),
]


class TestPerChunkReward:
    def test_income_proportional_to_forwarding(self):
        mechanism = PerChunkRewardMechanism(reward_per_chunk=2.0)
        for route in ROUTES:
            mechanism.process_route(route)
        nodes = [1, 2, 3, 4]
        contributions = mechanism.contributions(nodes)
        incomes = mechanism.incomes(nodes)
        assert incomes == [c * 2.0 for c in contributions]

    def test_f1_is_zero_by_construction(self):
        mechanism = PerChunkRewardMechanism()
        for route in ROUTES:
            mechanism.process_route(route)
        nodes = [1, 2, 3, 4]
        report = evaluate_fairness(
            mechanism.contributions(nodes), mechanism.incomes(nodes)
        )
        assert report.f1_gini == pytest.approx(0.0, abs=1e-12)

    def test_bad_reward_rejected(self):
        with pytest.raises(ConfigurationError):
            PerChunkRewardMechanism(reward_per_chunk=0.0)


class TestEqualSplit:
    def test_everyone_earns_the_same(self):
        mechanism = EqualSplitMechanism(pool_per_route=4.0)
        for route in ROUTES:
            mechanism.process_route(route)
        incomes = mechanism.incomes([1, 2, 3, 4])
        assert incomes == [3.0, 3.0, 3.0, 3.0]  # 3 routes * 4.0 / 4 nodes

    def test_f2_is_zero_by_construction(self):
        mechanism = EqualSplitMechanism()
        for route in ROUTES:
            mechanism.process_route(route)
        nodes = [1, 2, 3, 4]
        report = evaluate_fairness(
            mechanism.contributions(nodes), mechanism.incomes(nodes)
        )
        assert report.f2_gini == pytest.approx(0.0, abs=1e-12)

    def test_empty_node_list(self):
        assert EqualSplitMechanism().incomes([]) == []


class TestNoReward:
    def test_nobody_earns(self):
        mechanism = NoRewardMechanism()
        for route in ROUTES:
            mechanism.process_route(route)
        assert mechanism.incomes([1, 2, 3, 4]) == [0.0] * 4
        assert mechanism.routes_processed == 3
