"""Unit tests for churn (repro.swarm.churn)."""

from __future__ import annotations

import pytest

from repro.engine.des import EventScheduler
from repro.errors import ConfigurationError, OverlayError
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.kademlia.routing import Router
from repro.swarm.churn import ChurnModel, depart, rejoin


@pytest.fixture()
def overlay() -> Overlay:
    return Overlay.build(OverlayConfig(n_nodes=60, bits=10, seed=2))


class TestDepart:
    def test_evicted_from_all_tables(self, overlay):
        victim = overlay.addresses[0]
        evictions = depart(overlay, victim)
        assert evictions > 0
        for owner in overlay.addresses:
            if owner != victim:
                assert victim not in overlay.table(owner)

    def test_own_table_kept(self, overlay):
        victim = overlay.addresses[0]
        before = len(overlay.table(victim))
        depart(overlay, victim)
        assert len(overlay.table(victim)) == before

    def test_unknown_node_rejected(self, overlay):
        missing = next(
            a for a in range(overlay.space.size) if a not in overlay
        )
        with pytest.raises(OverlayError):
            depart(overlay, missing)

    def test_routing_still_works_after_departure(self, overlay):
        victim = overlay.addresses[0]
        depart(overlay, victim)
        router = Router(overlay)
        live = [a for a in overlay.addresses if a != victim]
        for origin in live[:10]:
            for target in live[:10]:
                route = router.route(origin, target)
                assert victim not in route.path[1:-1]


class TestRejoin:
    def test_reannounced_to_live_peers(self, overlay):
        victim = overlay.addresses[0]
        depart(overlay, victim)
        live = set(overlay.addresses)
        acceptances = rejoin(overlay, victim, live)
        assert acceptances > 0
        present = sum(
            1 for owner in overlay.addresses
            if owner != victim and victim in overlay.table(owner)
        )
        assert present == acceptances

    def test_dead_peers_dropped_from_own_table(self, overlay):
        victim = overlay.addresses[0]
        dead_peer = overlay.table(victim).peers()[0]
        live = set(overlay.addresses) - {dead_peer}
        rejoin(overlay, victim, live)
        assert dead_peer not in overlay.table(victim)


class TestChurnModel:
    def test_protected_nodes_never_leave(self, overlay):
        model = ChurnModel(overlay, mean_session=1.0, mean_downtime=1.0,
                           protected_fraction=1.0, seed=4)
        scheduler = EventScheduler()
        model.install(scheduler)
        scheduler.run_until(100.0)
        assert model.live_fraction == 1.0
        assert model.stats.departures == 0

    def test_churn_reduces_live_fraction(self, overlay):
        model = ChurnModel(overlay, mean_session=10.0, mean_downtime=10.0,
                           protected_fraction=0.0, seed=4)
        scheduler = EventScheduler()
        model.install(scheduler)
        scheduler.run_until(50.0)
        assert model.stats.departures > 0
        assert model.live_fraction < 1.0

    def test_nodes_come_back(self, overlay):
        model = ChurnModel(overlay, mean_session=5.0, mean_downtime=1.0,
                           protected_fraction=0.0, seed=4)
        scheduler = EventScheduler()
        model.install(scheduler)
        scheduler.run_until(200.0)
        assert model.stats.rejoins > 0
        # Short downtimes keep most of the population online.
        assert model.live_fraction > 0.5

    def test_live_array_matches_set(self, overlay):
        model = ChurnModel(overlay, seed=4)
        scheduler = EventScheduler()
        model.install(scheduler)
        scheduler.run_until(150.0)
        assert set(model.live_array().tolist()) == model.live.intersection(
            model.live
        )

    def test_bad_fraction_rejected(self, overlay):
        with pytest.raises(ConfigurationError):
            ChurnModel(overlay, protected_fraction=1.5)

    def test_deterministic(self, overlay):
        def run():
            fresh = Overlay.build(OverlayConfig(n_nodes=60, bits=10, seed=2))
            model = ChurnModel(fresh, mean_session=5.0, mean_downtime=5.0,
                               protected_fraction=0.0, seed=4)
            scheduler = EventScheduler()
            model.install(scheduler)
            scheduler.run_until(50.0)
            return (model.stats.departures, model.stats.rejoins,
                    sorted(model.live))
        assert run() == run()
