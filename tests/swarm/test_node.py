"""Unit tests for SwarmNode (repro.swarm.node)."""

from __future__ import annotations

from repro.kademlia.address import AddressSpace
from repro.kademlia.table import RoutingTable
from repro.swarm.caching import LRUCache
from repro.swarm.node import SwarmNode


def make_node(cache=None):
    space = AddressSpace(8)
    return SwarmNode(5, RoutingTable(5, space), cache=cache)


class TestSwarmNode:
    def test_default_has_no_cache(self):
        node = make_node()
        node.cache.admit(1)
        assert not node.has_chunk(1)

    def test_has_chunk_from_store(self):
        node = make_node()
        node.store.put(9)
        assert node.has_chunk(9)
        assert node.serve_source(9) == "store"

    def test_has_chunk_from_cache(self):
        node = make_node(cache=LRUCache(4))
        node.cache.admit(9)
        assert node.has_chunk(9)
        assert node.serve_source(9) == "cache"

    def test_store_takes_priority_over_cache(self):
        node = make_node(cache=LRUCache(4))
        node.store.put(9)
        node.cache.admit(9)
        assert node.serve_source(9) == "store"

    def test_miss(self):
        assert make_node().serve_source(1) == "miss"

    def test_cache_hit_refreshes_recency(self):
        node = make_node(cache=LRUCache(2))
        node.cache.admit(1)
        node.cache.admit(2)
        assert node.serve_source(1) == "cache"   # touches 1
        node.cache.admit(3)                       # evicts 2, not 1
        assert 1 in node.cache
        assert 2 not in node.cache
