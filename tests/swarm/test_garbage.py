"""Unit tests for garbage collection (repro.swarm.garbage)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kademlia.address import AddressSpace
from repro.kademlia.table import RoutingTable
from repro.swarm.garbage import StampIndex, collect_garbage
from repro.swarm.node import SwarmNode
from repro.swarm.postage import PostageOffice


def make_world():
    space = AddressSpace(10)
    nodes = {
        address: SwarmNode(address, RoutingTable(address, space))
        for address in (1, 2, 3)
    }
    office = PostageOffice(rent_per_chunk_round=1.0)
    index = StampIndex()
    return nodes, office, index


class TestStampIndex:
    def test_record_and_lookup(self):
        _nodes, office, index = make_world()
        batch = office.buy_batch(owner=1, value=10.0, depth=4)
        stamp = batch.stamp(100)
        index.record(stamp)
        assert index.batch_of(100) == batch.batch_id
        assert index.batch_of(999) is None
        assert len(index) == 1

    def test_restamp_transfers_funding(self):
        _nodes, office, index = make_world()
        old = office.buy_batch(owner=1, value=10.0, depth=4)
        new = office.buy_batch(owner=2, value=10.0, depth=4)
        index.record(old.stamp(100))
        index.record(new.stamp(100))
        assert index.batch_of(100) == new.batch_id


class TestCollectGarbage:
    def test_funded_chunks_survive(self):
        nodes, office, index = make_world()
        batch = office.buy_batch(owner=1, value=100.0, depth=6)
        for chunk in (10, 20, 30):
            index.record(batch.stamp(chunk))
            nodes[1].store.put(chunk)
        report = collect_garbage(nodes, office, index)
        assert report.evicted == 0
        assert report.kept == 3
        assert len(nodes[1].store) == 3

    def test_expired_batch_chunks_evicted(self):
        nodes, office, index = make_world()
        batch = office.buy_batch(owner=1, value=1.0, depth=6)
        for chunk in (10, 20):
            index.record(batch.stamp(chunk))
            nodes[1].store.put(chunk)
        office.collect_rent()  # rent 1.0 x 2 chunks > balance: expires
        assert batch.expired
        report = collect_garbage(nodes, office, index)
        assert report.evicted == 2
        assert len(nodes[1].store) == 0
        assert report.evicted_per_node == {1: 2}

    def test_unstamped_chunks_policy(self):
        nodes, office, index = make_world()
        nodes[2].store.put(77)
        evicting = collect_garbage(nodes, office, index)
        assert evicting.evicted == 1

        nodes[2].store.put(77)
        keeping = collect_garbage(nodes, office, index,
                                  evict_unstamped=False)
        assert keeping.evicted == 0
        assert 77 in nodes[2].store

    def test_mixed_funding(self):
        nodes, office, index = make_world()
        live = office.buy_batch(owner=1, value=100.0, depth=6)
        dying = office.buy_batch(owner=2, value=0.5, depth=6)
        index.record(live.stamp(10))
        index.record(dying.stamp(20))
        nodes[3].store.put(10)
        nodes[3].store.put(20)
        office.collect_rent()
        report = collect_garbage(nodes, office, index)
        assert 10 in nodes[3].store
        assert 20 not in nodes[3].store
        assert report.kept == 1

    def test_empty_nodes_rejected(self):
        _nodes, office, index = make_world()
        with pytest.raises(ConfigurationError):
            collect_garbage({}, office, index)
