"""Unit tests for the SwarmNetwork facade (repro.swarm.network)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, OverlayError
from repro.kademlia.overlay import OverlayConfig
from repro.swarm.chunk import FileManifest, split_content
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig


@pytest.fixture(scope="module")
def network() -> SwarmNetwork:
    return SwarmNetwork(SwarmNetworkConfig(
        overlay=OverlayConfig(n_nodes=80, bits=12, seed=21),
    ))


class TestConfig:
    def test_defaults_match_paper(self):
        config = SwarmNetworkConfig()
        assert config.pricing == "xor"
        assert config.policy == "zero-proximity"
        assert config.placement == "closest"
        assert config.implicit_storage is True
        assert config.cache == "none"

    def test_bad_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            SwarmNetworkConfig(placement="everywhere")

    def test_placement_factories(self):
        assert SwarmNetworkConfig().make_placement().__class__.__name__ == (
            "ClosestNodePlacement"
        )
        config = SwarmNetworkConfig(placement="neighborhood", replicas=2)
        assert config.make_placement().replicas == 2


class TestDownload:
    def test_download_accounts_traffic(self, network, rng):
        before = network.forwarded_per_node().sum()
        originator = int(rng.choice(network.overlay.address_array()))
        manifest = FileManifest(
            file_id=1,
            chunk_addresses=tuple(
                int(a) for a in
                rng.integers(0, network.overlay.space.size, size=25)
            ),
        )
        receipt = network.download_file(originator, manifest)
        assert receipt.chunks == 25
        after = network.forwarded_per_node().sum()
        assert after - before == receipt.total_hops

    def test_unknown_originator_raises(self, network):
        manifest = FileManifest(file_id=1, chunk_addresses=(1,))
        missing = next(
            a for a in range(network.overlay.space.size)
            if a not in network.overlay
        )
        with pytest.raises(OverlayError):
            network.download_file(missing, manifest)

    def test_views_are_aligned(self, network):
        n = len(network.addresses)
        assert network.income_per_node().shape == (n,)
        assert network.forwarded_per_node().shape == (n,)
        assert network.first_hop_per_node().shape == (n,)

    def test_first_hop_never_exceeds_forwarded(self, network):
        assert np.all(
            network.first_hop_per_node() <= network.forwarded_per_node()
        )

    def test_fairness_reports(self, network):
        report = network.fairness()
        assert 0.0 <= report.f2_gini <= 1.0
        paper_f1 = network.paper_f1()
        assert 0.0 <= paper_f1.f1_gini <= 1.0


class TestUploadAndSeed:
    def test_seed_manifest_places_at_storer(self):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=40, bits=10, seed=3),
            implicit_storage=False,
        ))
        manifest = FileManifest(file_id=1, chunk_addresses=(5, 900, 333))
        network.seed_manifest(manifest)
        for address in manifest.chunk_addresses:
            storer = network.overlay.closest_node(address)
            assert address in network.node(storer).store

    def test_upload_then_download_roundtrip(self):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=40, bits=10, seed=3),
            implicit_storage=False,
        ))
        rng = np.random.default_rng(1)
        originator = int(rng.choice(network.overlay.address_array()))
        downloader = int(rng.choice(network.overlay.address_array()))
        manifest = FileManifest(
            file_id=1,
            chunk_addresses=tuple(
                int(a) for a in rng.integers(0, 1024, size=10)
            ),
        )
        network.upload_file(originator, manifest)
        receipt = network.download_file(downloader, manifest)
        assert receipt.chunks == 10
        assert network.files_uploaded == 1
        assert network.files_downloaded == 1

    def test_upload_accounts_bandwidth(self):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=40, bits=10, seed=3),
            implicit_storage=False,
        ))
        manifest = FileManifest(file_id=1, chunk_addresses=(511, 767))
        originator = network.addresses[0]
        network.upload_file(originator, manifest)
        assert network.forwarded_per_node().sum() > 0

    def test_real_content_roundtrip(self):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=40, bits=10, seed=3),
            implicit_storage=False,
        ))
        content = b"decentralized storage" * 600  # > 3 chunks
        manifest = split_content(9, content, network.overlay.space)
        network.seed_manifest(manifest)
        rebuilt = []
        for address in manifest.chunk_addresses:
            storer = network.overlay.closest_node(address)
            rebuilt.append(network.node(storer).store.get(address))
        assert b"".join(rebuilt) == content


class TestAmortize:
    def test_amortize_reduces_debt(self, rng):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=40, bits=10, seed=3),
        ))
        originator = int(rng.choice(network.overlay.address_array()))
        manifest = FileManifest(
            file_id=1,
            chunk_addresses=tuple(
                int(a) for a in rng.integers(0, 1024, size=30)
            ),
        )
        network.download_file(originator, manifest)
        forgiven = network.amortize(0.001)
        assert forgiven > 0
