"""Unit tests for cache policies (repro.swarm.caching)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.swarm.caching import LFUCache, LRUCache, NoCache, make_cache


class TestNoCache:
    def test_never_holds_anything(self):
        cache = NoCache()
        cache.admit(5)
        assert 5 not in cache
        assert len(cache) == 0

    def test_touch_raises(self):
        with pytest.raises(ConfigurationError):
            NoCache().touch(5)


class TestLRUCache:
    def test_admit_and_contains(self):
        cache = LRUCache(capacity=2)
        cache.admit(1)
        assert 1 in cache
        assert len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.admit(1)
        cache.admit(2)
        cache.touch(1)      # 2 is now the LRU entry
        cache.admit(3)
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_readmit_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(1)      # refresh 1; 2 becomes LRU
        cache.admit(3)
        assert 2 not in cache

    def test_touch_uncached_raises(self):
        with pytest.raises(ConfigurationError):
            LRUCache(capacity=2).touch(1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(capacity=0)


class TestLFUCache:
    def test_evicts_least_frequent(self):
        cache = LFUCache(capacity=2)
        cache.admit(1)
        cache.admit(2)
        cache.touch(1)
        cache.touch(1)
        cache.admit(3)      # 2 has the lowest frequency
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_fifo_tie_break(self):
        cache = LFUCache(capacity=2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(3)      # 1 and 2 tie at freq 1; 1 arrived first
        assert 1 not in cache
        assert 2 in cache

    def test_readmit_counts_as_use(self):
        cache = LFUCache(capacity=2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(2)      # freq(2)=2
        cache.admit(3)
        assert 1 not in cache

    def test_touch_uncached_raises(self):
        with pytest.raises(ConfigurationError):
            LFUCache(capacity=2).touch(1)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoCache), ("lru", LRUCache), ("lfu", LFUCache),
    ])
    def test_known(self, name, cls):
        assert isinstance(make_cache(name, capacity=4), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache("bogus")
