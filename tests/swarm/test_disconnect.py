"""Tests for SWAP disconnect enforcement (paper §III-B).

"If the balance reaches a certain limit, nodes stop serving each
other's requests unless debt is settled."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.kademlia.overlay import OverlayConfig
from repro.swarm.chunk import FileManifest
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig


def make_network(enforce: bool, *, payment=100.0, disconnect=150.0,
                 policy: str = "zero-proximity") -> SwarmNetwork:
    return SwarmNetwork(SwarmNetworkConfig(
        overlay=OverlayConfig(n_nodes=80, bits=12, seed=14),
        payment_threshold=payment,
        disconnect_threshold=disconnect,
        policy=policy,
        enforce_disconnect=enforce,
    ))


def download_many(network, n_chunks, seed=0):
    rng = np.random.default_rng(seed)
    originator = int(rng.choice(network.overlay.address_array()))
    manifest = FileManifest(
        file_id=0,
        chunk_addresses=tuple(
            int(a) for a in
            rng.integers(0, network.overlay.space.size, size=n_chunks)
        ),
    )
    return network.download_file(originator, manifest)


class TestDisconnectEnforcement:
    def test_paper_default_never_refuses(self):
        network = make_network(enforce=False)
        download_many(network, 300)
        assert network.retrieval.stats.refusals == 0

    def test_generous_thresholds_never_refuse(self):
        network = make_network(enforce=True, payment=1e6, disconnect=1e9)
        download_many(network, 300)
        assert network.retrieval.stats.refusals == 0

    def test_unpaying_consumer_gets_cut_off(self):
        # No payments at all plus tiny thresholds: debt builds on
        # every edge until providers refuse.
        network = make_network(
            enforce=True, payment=0.5, disconnect=0.6, policy="none",
        )
        with pytest.raises(RoutingError, match="refused|cut off"):
            for _ in range(50):
                download_many(network, 200)

    def test_refusals_are_counted_before_cutoff(self):
        network = make_network(
            enforce=True, payment=0.5, disconnect=0.8, policy="none",
        )
        try:
            for _ in range(50):
                download_many(network, 200)
        except RoutingError:
            pass
        assert network.retrieval.stats.refusals > 0

    def test_amortization_restores_service(self):
        network = make_network(
            enforce=True, payment=0.5, disconnect=0.6, policy="none",
        )
        try:
            for _ in range(50):
                download_many(network, 200)
        except RoutingError:
            pass
        # Forgive all debt: the same downloads must flow again.
        network.amortize(1e9)
        receipt = download_many(network, 50, seed=1)
        assert receipt.chunks == 50

    def test_paying_consumers_stay_connected(self):
        # With the default zero-proximity policy, first hops are paid
        # and only deeper edges accrue debt; with roomy thresholds a
        # normal workload never hits the disconnect limit.
        network = make_network(enforce=True, payment=50.0,
                               disconnect=75.0)
        for seed in range(5):
            download_many(network, 100, seed=seed)
        assert network.retrieval.stats.refusals == 0
