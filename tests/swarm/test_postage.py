"""Unit tests for postage stamps (repro.swarm.postage)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.swarm.postage import (
    PostageBatch,
    PostageError,
    PostageOffice,
    PostageStamp,
)


class TestPostageStamp:
    def test_negative_index_rejected(self):
        with pytest.raises(PostageError):
            PostageStamp(batch_id=1, chunk_address=2, index=-1)


class TestPostageBatch:
    def test_capacity_is_power_of_depth(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=3)
        assert batch.capacity == 8

    def test_stamp_issues_sequential_indices(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=3)
        first = batch.stamp(100)
        second = batch.stamp(200)
        assert (first.index, second.index) == (0, 1)
        assert batch.issued == 2

    def test_restamping_is_idempotent(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=3)
        first = batch.stamp(100)
        again = batch.stamp(100)
        assert first == again
        assert batch.issued == 1

    def test_full_batch_rejects(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=1)
        batch.stamp(1)
        batch.stamp(2)
        with pytest.raises(PostageError, match="full"):
            batch.stamp(3)

    def test_covers_only_genuine_stamps(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=3)
        stamp = batch.stamp(100)
        assert batch.covers(stamp)
        forged = PostageStamp(batch_id=1, chunk_address=100, index=9)
        assert not batch.covers(forged)
        other_batch = PostageStamp(batch_id=2, chunk_address=100, index=0)
        assert not batch.covers(other_batch)

    def test_rent_proportional_to_issued(self):
        batch = PostageBatch(1, owner=5, value=10.0, depth=4)
        for chunk in range(5):
            batch.stamp(chunk)
        collected = batch.charge_rent(0.1)
        assert collected == pytest.approx(0.5)
        assert batch.balance == pytest.approx(9.5)

    def test_rent_capped_by_balance_and_expires(self):
        batch = PostageBatch(1, owner=5, value=1.0, depth=4)
        for chunk in range(10):
            batch.stamp(chunk)
        collected = batch.charge_rent(1.0)  # due 10, balance 1
        assert collected == 1.0
        assert batch.expired
        with pytest.raises(PostageError, match="expired"):
            batch.stamp(99)

    @pytest.mark.parametrize("kwargs", [
        {"value": 0.0, "depth": 2},
        {"value": 5.0, "depth": -1},
        {"value": 5.0, "depth": 41},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PostageBatch(1, owner=5, **kwargs)


class TestPostageOffice:
    def test_buy_and_lookup(self):
        office = PostageOffice()
        batch = office.buy_batch(owner=3, value=5.0, depth=4)
        assert office.batch(batch.batch_id) is batch
        with pytest.raises(PostageError):
            office.batch(999)

    def test_validate_checks_funding(self):
        office = PostageOffice(rent_per_chunk_round=10.0)
        batch = office.buy_batch(owner=3, value=5.0, depth=4)
        stamp = batch.stamp(7)
        assert office.validate(stamp)
        office.collect_rent()  # drains the batch fully
        assert batch.expired
        assert not office.validate(stamp)

    def test_validate_unknown_batch_false(self):
        office = PostageOffice()
        assert not office.validate(
            PostageStamp(batch_id=42, chunk_address=1, index=0)
        )

    def test_rent_accumulates_in_pot(self):
        office = PostageOffice(rent_per_chunk_round=0.5)
        batch_a = office.buy_batch(owner=1, value=10.0, depth=4)
        batch_b = office.buy_batch(owner=2, value=10.0, depth=4)
        batch_a.stamp(1)
        batch_b.stamp(2)
        batch_b.stamp(3)
        collected = office.collect_rent()
        assert collected == pytest.approx(1.5)
        assert office.pot == pytest.approx(1.5)
        assert office.rounds_collected == 1

    def test_pay_out_bounded_by_pot(self):
        office = PostageOffice()
        office.pot = 2.0
        assert office.pay_out(5.0) == 2.0
        assert office.pot == 0.0
        with pytest.raises(ConfigurationError):
            office.pay_out(-1.0)

    def test_bad_rent_rejected(self):
        with pytest.raises(ConfigurationError):
            PostageOffice(rent_per_chunk_round=-0.1)
