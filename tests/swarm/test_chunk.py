"""Unit tests for chunks and manifests (repro.swarm.chunk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kademlia.address import AddressSpace
from repro.swarm.chunk import (
    CHUNK_SIZE,
    Chunk,
    FileManifest,
    random_file,
    split_content,
)


@pytest.fixture()
def space() -> AddressSpace:
    return AddressSpace(12)


class TestChunk:
    def test_chunk_size_is_4kb(self):
        assert CHUNK_SIZE == 4096

    def test_oversized_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            Chunk(address=1, data=b"x" * (CHUNK_SIZE + 1))

    def test_abstract_chunk_reports_full_size(self):
        assert Chunk(address=1).size == CHUNK_SIZE

    def test_payload_size(self):
        assert Chunk(address=1, data=b"abc").size == 3

    def test_from_data_deterministic(self, space):
        a = Chunk.from_data(b"hello", space)
        b = Chunk.from_data(b"hello", space)
        assert a.address == b.address
        assert a.address in space

    def test_from_data_differs_by_content(self, space):
        assert (
            Chunk.from_data(b"hello", space).address
            != Chunk.from_data(b"world", space).address
        )

    def test_from_data_oversized_rejected(self, space):
        with pytest.raises(ConfigurationError):
            Chunk.from_data(b"x" * (CHUNK_SIZE + 1), space)


class TestFileManifest:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FileManifest(file_id=1, chunk_addresses=())

    def test_len_and_bytes(self):
        manifest = FileManifest(file_id=1, chunk_addresses=(1, 2, 3))
        assert len(manifest) == 3
        assert manifest.total_bytes == 3 * CHUNK_SIZE

    def test_chunks_alignment_enforced(self):
        with pytest.raises(ConfigurationError, match="align"):
            FileManifest(
                file_id=1, chunk_addresses=(1, 2),
                chunks=(Chunk(address=1),),
            )


class TestSplitContent:
    def test_roundtrip_addresses(self, space):
        content = bytes(range(256)) * 40  # 10240 bytes -> 3 chunks
        manifest = split_content(7, content, space)
        assert len(manifest) == 3
        rebuilt = b"".join(chunk.data for chunk in manifest.chunks)
        assert rebuilt == content

    def test_addresses_match_chunks(self, space):
        manifest = split_content(7, b"y" * 5000, space)
        for address, chunk in zip(manifest.chunk_addresses, manifest.chunks):
            assert address == chunk.address

    def test_empty_content_rejected(self, space):
        with pytest.raises(ConfigurationError):
            split_content(1, b"", space)


class TestRandomFile:
    def test_size_and_range(self, space, rng):
        manifest = random_file(3, 50, space, rng)
        assert len(manifest) == 50
        assert all(a in space for a in manifest.chunk_addresses)

    def test_deterministic(self, space):
        a = random_file(3, 50, space, np.random.default_rng(1))
        b = random_file(3, 50, space, np.random.default_rng(1))
        assert a.chunk_addresses == b.chunk_addresses

    def test_zero_chunks_rejected(self, space, rng):
        with pytest.raises(ConfigurationError):
            random_file(3, 0, space, rng)
