"""Unit tests for pull-sync (repro.swarm.sync)."""

from __future__ import annotations

import pytest

from repro.core.incentives import SwapIncentives
from repro.core.pricing import FlatPricing
from repro.errors import OverlayError
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.swarm.node import SwarmNode
from repro.swarm.storage import ClosestNodePlacement, NeighborhoodPlacement
from repro.swarm.sync import plan_sync, pull_sync


@pytest.fixture()
def world():
    overlay = Overlay.build(OverlayConfig(n_nodes=50, bits=10, seed=6))
    nodes = {a: SwarmNode(a, overlay.table(a)) for a in overlay.addresses}
    return overlay, nodes


def seed_chunks(overlay, nodes, count, rng):
    """Place chunks at their closest nodes; return the addresses."""
    chunks = [int(c) for c in rng.integers(0, overlay.space.size, size=count)]
    for chunk in chunks:
        nodes[overlay.closest_node(chunk)].store.put(chunk, b"payload")
    return chunks


class TestPlanSync:
    def test_up_to_date_node_needs_nothing(self, world, rng):
        overlay, nodes = world
        seed_chunks(overlay, nodes, 100, rng)
        node = overlay.addresses[0]
        plan = plan_sync(overlay, nodes, node, ClosestNodePlacement())
        assert plan.chunks_needed == 0

    def test_missing_replicas_detected(self, world, rng):
        overlay, nodes = world
        chunks = seed_chunks(overlay, nodes, 100, rng)
        placement = NeighborhoodPlacement(replicas=2)
        # With only the primary seeded, every second replica is missing.
        total_missing = sum(
            plan_sync(overlay, nodes, node, placement).chunks_needed
            for node in overlay.addresses
        )
        distinct = len(set(chunks))
        # The secondary of each distinct chunk is missing exactly once,
        # except chunks whose primary and secondary collide (never, by
        # definition) or duplicate draws.
        assert total_missing == distinct

    def test_unknown_node_rejected(self, world):
        overlay, nodes = world
        with pytest.raises(OverlayError):
            plan_sync(overlay, nodes, -1, ClosestNodePlacement())


class TestPullSync:
    def test_rejoining_node_recovers_its_chunks(self, world, rng):
        overlay, nodes = world
        chunks = seed_chunks(overlay, nodes, 200, rng)
        victim = overlay.addresses[0]
        placement = NeighborhoodPlacement(replicas=2)
        # Secondary replicas must exist before the victim loses data.
        for node in overlay.addresses:
            pull_sync(overlay, nodes, node, placement)
        owned = list(nodes[victim].store.addresses())
        for chunk in owned:
            nodes[victim].store.delete(chunk)
        plan = pull_sync(overlay, nodes, victim, placement)
        assert plan.chunks_needed == len(owned)
        for chunk in owned:
            assert chunk in nodes[victim].store
            assert nodes[victim].store.get(chunk) == b"payload"

    def test_sync_bandwidth_is_accounted(self, world, rng):
        overlay, nodes = world
        seed_chunks(overlay, nodes, 150, rng)
        placement = NeighborhoodPlacement(replicas=2)
        incentives = SwapIncentives(FlatPricing(1.0))
        node = overlay.addresses[0]
        plan = pull_sync(overlay, nodes, node, placement, incentives)
        if plan.chunks_needed:
            served = incentives.contributions(sorted(plan.sources()))
            assert sum(served) == plan.chunks_needed

    def test_sync_is_idempotent(self, world, rng):
        overlay, nodes = world
        seed_chunks(overlay, nodes, 100, rng)
        placement = NeighborhoodPlacement(replicas=3)
        node = overlay.addresses[0]
        pull_sync(overlay, nodes, node, placement)
        second = pull_sync(overlay, nodes, node, placement)
        assert second.chunks_needed == 0
