"""Unit tests for the redistribution game (repro.swarm.redistribution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.swarm.node import SwarmNode
from repro.swarm.postage import PostageOffice
from repro.swarm.redistribution import RedistributionGame, StakeRegistry


@pytest.fixture()
def game_parts():
    overlay = Overlay.build(OverlayConfig(n_nodes=40, bits=10, seed=8))
    nodes = {
        address: SwarmNode(address, overlay.table(address))
        for address in overlay.addresses
    }
    rng = np.random.default_rng(1)
    # Give every node a small reserve.
    for node in nodes.values():
        for chunk in rng.integers(0, overlay.space.size, size=5):
            node.store.put(int(chunk))
    office = PostageOffice(rent_per_chunk_round=0.01)
    batch = office.buy_batch(owner=overlay.addresses[0], value=50.0,
                             depth=10)
    for chunk in range(100):
        batch.stamp(chunk)
    stakes = StakeRegistry(minimum_stake=1.0)
    for address in overlay.addresses:
        stakes.deposit(address, 2.0)
    return overlay, nodes, office, stakes


class TestStakeRegistry:
    def test_deposit_accumulates(self):
        stakes = StakeRegistry()
        stakes.deposit(1, 2.0)
        stakes.deposit(1, 0.5)
        assert stakes.stake_of(1) == 2.5

    def test_eligibility_threshold(self):
        stakes = StakeRegistry(minimum_stake=2.0)
        stakes.deposit(1, 1.0)
        assert not stakes.eligible(1)
        stakes.deposit(1, 1.0)
        assert stakes.eligible(1)

    def test_slash(self):
        stakes = StakeRegistry()
        stakes.deposit(1, 4.0)
        burned = stakes.slash(1, 0.5)
        assert burned == 2.0
        assert stakes.stake_of(1) == 2.0

    def test_bad_slash_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            StakeRegistry().slash(1, 1.5)


class TestRedistributionGame:
    def test_rounds_pay_out_the_pot(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office, stakes=stakes,
        )
        outcomes = game.play_rounds(50)
        paid = sum(outcome.reward for outcome in outcomes)
        assert paid > 0
        assert office.pot == pytest.approx(0.0, abs=1e-9)
        # Conservation: rewards distributed equal rent collected.
        assert paid == pytest.approx(
            sum(game.rewards.values())
        )

    def test_winners_are_anchor_neighbors(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office, stakes=stakes,
            neighborhood_size=4,
        )
        for outcome in game.play_rounds(30):
            if outcome.winner is None:
                continue
            neighborhood = overlay.space.sort_by_distance(
                outcome.anchor, overlay.addresses
            )[:4]
            assert outcome.winner in neighborhood

    def test_unstaked_nodes_cannot_win(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        fresh_stakes = StakeRegistry(minimum_stake=1.0)
        staked = set(overlay.addresses[:5])
        for address in staked:
            fresh_stakes.deposit(address, 2.0)
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office,
            stakes=fresh_stakes,
        )
        for outcome in game.play_rounds(50):
            if outcome.winner is not None:
                assert outcome.winner in staked

    def test_cheaters_detected_frozen_and_slashed(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        cheater = overlay.addresses[0]
        before = stakes.stake_of(cheater)
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office, stakes=stakes,
            freeze_rounds=1000,
        )
        game.mark_cheater(cheater)
        outcomes = game.play_rounds(200)
        detected = any(cheater in o.cheaters for o in outcomes)
        if detected:
            assert stakes.stake_of(cheater) < before
            assert game.is_frozen(cheater, 199)
            # A frozen cheater never wins after detection.
            first = next(
                o.round_index for o in outcomes if cheater in o.cheaters
            )
            for outcome in outcomes[first:]:
                assert outcome.winner != cheater

    def test_stake_weighting_biases_wins(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        # One node gets overwhelming stake.
        whale = overlay.addresses[0]
        stakes.deposit(whale, 1000.0)
        office.pot = 0.0
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office, stakes=stakes,
            seed=3,
        )
        game.play_rounds(300, collect_rent=True)
        wins = game.win_counts()
        if whale in wins:
            mean_other = np.mean(
                [wins.get(a, 0) for a in overlay.addresses[1:]]
            )
            # The whale wins far above average whenever eligible.
            assert wins[whale] > mean_other

    def test_reward_vector_alignment(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        game = RedistributionGame(
            overlay=overlay, nodes=nodes, office=office, stakes=stakes,
        )
        game.play_rounds(20)
        vector = game.reward_vector(list(overlay.addresses))
        assert len(vector) == len(overlay.addresses)
        assert sum(vector) == pytest.approx(sum(game.rewards.values()))

    def test_bad_neighborhood_size_rejected(self, game_parts):
        overlay, nodes, office, stakes = game_parts
        with pytest.raises(ConfigurationError):
            RedistributionGame(
                overlay=overlay, nodes=nodes, office=office,
                stakes=stakes, neighborhood_size=0,
            )
