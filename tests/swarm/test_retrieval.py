"""Unit tests for the retrieval protocol (repro.swarm.retrieval)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.kademlia.routing import Router
from repro.swarm.caching import LRUCache
from repro.swarm.node import SwarmNode
from repro.swarm.retrieval import RetrievalProtocol


def build_nodes(overlay, cache_capacity=None):
    return {
        address: SwarmNode(
            address,
            overlay.table(address),
            cache=LRUCache(cache_capacity) if cache_capacity else None,
        )
        for address in overlay.addresses
    }


class TestBasicRetrieval:
    def test_implicit_storage_reaches_storer(self, medium_overlay, rng):
        nodes = build_nodes(medium_overlay)
        protocol = RetrievalProtocol(
            medium_overlay, nodes, implicit_storage=True
        )
        for _ in range(100):
            originator = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            retrieval = protocol.retrieve(originator, target)
            assert retrieval.served_by == medium_overlay.closest_node(target)

    def test_matches_router_paths_without_caches(self, medium_overlay, rng):
        nodes = build_nodes(medium_overlay)
        protocol = RetrievalProtocol(
            medium_overlay, nodes, implicit_storage=True
        )
        router = Router(medium_overlay)
        for _ in range(100):
            originator = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            assert (
                protocol.retrieve(originator, target).route.path
                == router.route(originator, target).path
            )

    def test_local_hit_when_originator_stores(self, medium_overlay):
        nodes = build_nodes(medium_overlay)
        originator = medium_overlay.addresses[0]
        nodes[originator].store.put(42)
        protocol = RetrievalProtocol(medium_overlay, nodes)
        retrieval = protocol.retrieve(originator, 42)
        assert retrieval.source == "local"
        assert retrieval.route.hops == 0

    def test_miss_without_upload_raises(self, medium_overlay):
        nodes = build_nodes(medium_overlay)
        protocol = RetrievalProtocol(medium_overlay, nodes)
        originator = medium_overlay.addresses[0]
        target = (originator + 1) % medium_overlay.space.size
        with pytest.raises(RoutingError, match="uploaded"):
            protocol.retrieve(originator, target)

    def test_explicit_storage_serves_store(self, medium_overlay):
        nodes = build_nodes(medium_overlay)
        target = 777
        storer = medium_overlay.closest_node(target)
        nodes[storer].store.put(target)
        protocol = RetrievalProtocol(medium_overlay, nodes)
        originator = next(
            a for a in medium_overlay.addresses if a != storer
        )
        retrieval = protocol.retrieve(originator, target)
        assert retrieval.source == "store"
        assert retrieval.served_by == storer

    def test_unknown_originator_raises(self, medium_overlay):
        nodes = build_nodes(medium_overlay)
        protocol = RetrievalProtocol(medium_overlay, nodes)
        missing = next(
            a for a in range(medium_overlay.space.size)
            if a not in medium_overlay
        )
        with pytest.raises(RoutingError):
            protocol.retrieve(missing, 0)


class TestCaching:
    def test_forwarders_admit_on_path(self, medium_overlay, rng):
        nodes = build_nodes(medium_overlay, cache_capacity=32)
        protocol = RetrievalProtocol(
            medium_overlay, nodes, implicit_storage=True, cache_on_path=True
        )
        # Find a retrieval with at least one intermediate hop.
        for _ in range(200):
            originator = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            retrieval = protocol.retrieve(originator, target)
            if retrieval.route.hops >= 2:
                middle = retrieval.route.path[1:-1]
                for node in middle:
                    assert target in nodes[node].cache
                break
        else:
            pytest.fail("no multi-hop retrieval found")

    def test_cache_hit_truncates_path(self, medium_overlay, rng):
        nodes = build_nodes(medium_overlay, cache_capacity=32)
        protocol = RetrievalProtocol(
            medium_overlay, nodes, implicit_storage=True, cache_on_path=True
        )
        for _ in range(300):
            originator = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            first = protocol.retrieve(originator, target)
            if first.route.hops >= 2:
                # A second retrieval from the same originator must stop
                # at the now-cached first hop.
                second = protocol.retrieve(originator, target)
                assert second.route.hops <= first.route.hops
                if second.source == "cache":
                    assert second.route.hops < first.route.hops
                    break
        else:
            pytest.fail("no cache-truncated retrieval observed")

    def test_stats_track_savings(self, medium_overlay, rng):
        nodes = build_nodes(medium_overlay, cache_capacity=64)
        protocol = RetrievalProtocol(
            medium_overlay, nodes, implicit_storage=True, cache_on_path=True
        )
        targets = [int(t) for t in rng.integers(
            0, medium_overlay.space.size, size=20
        )]
        originators = [
            int(o) for o in rng.choice(medium_overlay.address_array(), 10)
        ]
        for originator in originators:
            for target in targets:
                protocol.retrieve(originator, target)
        stats = protocol.stats
        assert stats.retrievals == 200
        assert stats.cache_hits + stats.store_hits + stats.local_hits == 200
        if stats.cache_hits:
            assert stats.hops_saved_by_cache > 0
