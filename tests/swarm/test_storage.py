"""Unit tests for chunk stores and placement (repro.swarm.storage)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.swarm.storage import (
    ChunkStore,
    ClosestNodePlacement,
    NeighborhoodPlacement,
)


class TestChunkStore:
    def test_put_get_delete(self):
        store = ChunkStore(owner=1)
        assert store.put(10, b"abc")
        assert 10 in store
        assert store.get(10) == b"abc"
        store.delete(10)
        assert 10 not in store

    def test_capacity_enforced(self):
        store = ChunkStore(owner=1, capacity=2)
        assert store.put(1)
        assert store.put(2)
        assert store.is_full
        assert not store.put(3)

    def test_reput_existing_succeeds_when_full(self):
        store = ChunkStore(owner=1, capacity=1)
        store.put(1, b"a")
        assert store.put(1, b"b")
        assert store.get(1) == b"b"

    def test_get_absent_raises(self):
        with pytest.raises(KeyError):
            ChunkStore(owner=1).get(9)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ChunkStore(owner=1, capacity=0)

    def test_addresses_lists_pinned(self):
        store = ChunkStore(owner=1)
        store.put(5)
        store.put(9)
        assert sorted(store.addresses()) == [5, 9]


class TestClosestNodePlacement:
    def test_single_storer_is_closest(self, small_overlay):
        placement = ClosestNodePlacement()
        for target in range(0, small_overlay.space.size, 11):
            storers = placement.storers(target, small_overlay)
            assert storers == [small_overlay.closest_node(target)]
            assert placement.primary(target, small_overlay) == storers[0]


class TestNeighborhoodPlacement:
    def test_replica_count_and_order(self, small_overlay):
        placement = NeighborhoodPlacement(replicas=3)
        target = 123
        storers = placement.storers(target, small_overlay)
        assert len(storers) == 3
        distances = [s ^ target for s in storers]
        assert distances == sorted(distances)
        assert storers[0] == small_overlay.closest_node(target)

    def test_bad_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            NeighborhoodPlacement(replicas=0)
