"""Shared fixtures: small deterministic overlays and networks.

Session-scoped where construction is expensive; tests must not mutate
shared overlays (they build their own when they need mutation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kademlia import AddressSpace, BucketLimits, Overlay, OverlayConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help=(
            "rewrite the tests/golden/ regression fixtures from current "
            "simulation behavior instead of comparing against them"
        ),
    )


@pytest.fixture()
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should refresh the golden fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def space12() -> AddressSpace:
    """A 12-bit address space (4096 addresses)."""
    return AddressSpace(12)


@pytest.fixture(scope="session")
def small_overlay() -> Overlay:
    """60 nodes in an 8-bit space, k=4 — tiny but non-trivial."""
    return Overlay.build(
        OverlayConfig(
            n_nodes=60, bits=8, limits=BucketLimits.uniform(4), seed=5
        )
    )


@pytest.fixture(scope="session")
def medium_overlay() -> Overlay:
    """200 nodes in a 12-bit space, k=4 — the workhorse fixture."""
    return Overlay.build(
        OverlayConfig(
            n_nodes=200, bits=12, limits=BucketLimits.uniform(4), seed=11
        )
    )


@pytest.fixture(scope="session")
def wide_overlay() -> Overlay:
    """200 nodes in a 12-bit space, k=20 — the paper's alternative k."""
    return Overlay.build(
        OverlayConfig(
            n_nodes=200, bits=12, limits=BucketLimits.uniform(20), seed=11
        )
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
