"""Integration: churn + pull-sync + garbage collection lifecycle.

The full availability story across three subsystems: a node departs,
its chunks are replicated elsewhere, it rejoins, pull-syncs its area
of responsibility back, and later loses unfunded chunks to garbage
collection when their postage batch expires.
"""

from __future__ import annotations

import pytest

from repro.engine.des import EventScheduler
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.swarm.churn import ChurnModel, depart, rejoin
from repro.swarm.garbage import StampIndex, collect_garbage
from repro.swarm.node import SwarmNode
from repro.swarm.postage import PostageOffice
from repro.swarm.storage import NeighborhoodPlacement
from repro.swarm.sync import pull_sync


@pytest.fixture()
def world():
    overlay = Overlay.build(OverlayConfig(n_nodes=60, bits=11, seed=33))
    nodes = {a: SwarmNode(a, overlay.table(a)) for a in overlay.addresses}
    return overlay, nodes


class TestChurnRecoveryLifecycle:
    def test_depart_rejoin_sync_restores_responsibility(self, world, rng):
        overlay, nodes = world
        placement = NeighborhoodPlacement(replicas=3)
        # Upload content to all replicas.
        chunks = [int(c) for c in rng.integers(0, overlay.space.size,
                                               size=150)]
        for chunk in chunks:
            for storer in placement.storers(chunk, overlay):
                nodes[storer].store.put(chunk, b"data")

        victim = overlay.addresses[0]
        responsibility = set(nodes[victim].store.addresses())

        # The victim crashes and loses its disk.
        depart(overlay, victim)
        for chunk in list(nodes[victim].store.addresses()):
            nodes[victim].store.delete(chunk)

        # It rejoins and pull-syncs.
        live = set(overlay.addresses)
        rejoin(overlay, victim, live)
        plan = pull_sync(overlay, nodes, victim, placement)
        assert set(nodes[victim].store.addresses()) == responsibility
        assert plan.chunks_needed == len(responsibility)
        # Payloads survived via the replicas.
        for chunk in responsibility:
            assert nodes[victim].store.get(chunk) == b"data"

    def test_expired_funding_reclaims_recovered_chunks(self, world, rng):
        overlay, nodes = world
        placement = NeighborhoodPlacement(replicas=2)
        office = PostageOffice(rent_per_chunk_round=0.5)
        index = StampIndex()
        batch = office.buy_batch(owner=int(overlay.addresses[1]),
                                 value=3.0, depth=8)
        chunks = [int(c) for c in rng.integers(0, overlay.space.size,
                                               size=20)]
        for chunk in chunks:
            index.record(batch.stamp(chunk))
            for storer in placement.storers(chunk, overlay):
                nodes[storer].store.put(chunk)
        stored_before = sum(len(n.store) for n in nodes.values())
        assert stored_before > 0

        # Rent rounds eventually exhaust the batch.
        while not batch.expired:
            office.collect_rent()
        report = collect_garbage(nodes, office, index)
        assert report.evicted == stored_before
        assert sum(len(n.store) for n in nodes.values()) == 0

    def test_churning_population_keeps_replicated_data_available(
        self, world, rng
    ):
        overlay, nodes = world
        placement = NeighborhoodPlacement(replicas=4)
        chunks = [int(c) for c in rng.integers(0, overlay.space.size,
                                               size=80)]
        for chunk in chunks:
            for storer in placement.storers(chunk, overlay):
                nodes[storer].store.put(chunk)

        churn = ChurnModel(overlay, mean_session=20.0, mean_downtime=5.0,
                           protected_fraction=0.0, seed=2)
        scheduler = EventScheduler()
        churn.install(scheduler)
        scheduler.run_until(100.0)

        # With 4 replicas and ~80% liveness, nearly every chunk has at
        # least one live holder.
        available = 0
        for chunk in chunks:
            holders = placement.storers(chunk, overlay)
            if any(churn.is_live(holder) for holder in holders):
                available += 1
        assert available / len(chunks) > 0.95
