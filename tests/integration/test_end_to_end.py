"""End-to-end integration scenarios across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import gini
from repro.engine import (
    Block,
    Model,
    SimulationConfig,
    Simulator,
)
from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.kademlia.overlay import OverlayConfig
from repro.swarm.chunk import split_content
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig
from repro.workloads import paper_workload


class TestQuickSimulation:
    def test_readme_quickstart(self):
        result = repro.quick_simulation(
            bucket_size=4, originator_share=0.2, n_files=50, n_nodes=100,
        )
        assert result.files == 50
        assert "F2 Gini" in result.summary()

    def test_version_exposed(self):
        # Keep in sync with [project] version in pyproject.toml.
        assert repro.__version__ == "1.2.0"


class TestContentRoundTrip:
    def test_upload_download_verifies_bytes(self):
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=60, bits=12, seed=4),
            implicit_storage=False,
        ))
        content = b"fair incentivization of bandwidth sharing " * 300
        manifest = split_content(1, content, network.overlay.space)
        uploader = network.addresses[0]
        network.upload_file(uploader, manifest)
        downloader = network.addresses[1]
        receipt = network.download_file(downloader, manifest)
        assert receipt.chunks == len(manifest)
        # Every chunk is retrievable from where the route ended.
        for retrieval, address in zip(
            receipt.retrievals, manifest.chunk_addresses
        ):
            server = network.node(retrieval.served_by)
            assert server.has_chunk(address) or retrieval.source == "local"


class TestEngineDrivesSwarm:
    def test_cadcad_style_swarm_model(self):
        """A cadCAD-style model whose timestep is one file download."""
        network = SwarmNetwork(SwarmNetworkConfig(
            overlay=OverlayConfig(n_nodes=60, bits=12, seed=4),
        ))
        workload = paper_workload(n_files=20, originator_share=1.0, seed=2)
        events = workload.materialize(
            network.overlay.address_array(), network.overlay.space
        )

        def download_policy(context):
            event = events[context.timestep - 1]
            from repro.swarm.chunk import FileManifest

            manifest = FileManifest(
                file_id=event.file_id,
                chunk_addresses=tuple(
                    int(a) for a in event.chunk_addresses[:20]
                ),
            )
            network.download_file(int(event.originator), manifest)
            return {"downloaded": manifest.chunk_addresses}

        model = Model(
            initial_state={"f2_gini": 0.0},
            blocks=(
                Block(
                    name="download",
                    policies=(download_policy,),
                    updates={
                        "f2_gini": lambda c, s: gini(
                            network.income_per_node()
                        ),
                    },
                ),
            ),
        )
        results = Simulator(model).run(SimulationConfig(timesteps=20))
        series = results.series("f2_gini", run=0)
        assert len(series) == 21
        assert 0.0 <= series[-1] <= 1.0
        assert network.files_downloaded == 20


class TestMultiMachineStory:
    def test_split_runs_merge_to_single_result(self):
        base = dict(
            n_nodes=100, bits=12, bucket_size=4, originator_share=1.0,
            file_min=5, file_max=15, overlay_seed=5,
        )
        whole = FastSimulation(FastSimulationConfig(
            **base, n_files=40, workload_seed=1,
        )).run()
        part_a = FastSimulation(FastSimulationConfig(
            **base, n_files=20, workload_seed=2,
        )).run()
        part_b = FastSimulation(FastSimulationConfig(
            **base, n_files=20, workload_seed=3,
        )).run()
        merged = part_a.merge(part_b)
        assert merged.files == whole.files
        # Same overlay: storers agree, so per-node traffic is of the
        # same magnitude even though the workloads differ.
        assert merged.forwarded.sum() == pytest.approx(
            whole.forwarded.sum(), rel=0.3
        )


class TestSeedIsolation:
    def test_overlay_and_workload_seeds_independent(self):
        a = FastSimulation(FastSimulationConfig(
            n_nodes=80, bits=11, n_files=10, file_min=5, file_max=10,
            overlay_seed=1, workload_seed=1,
        )).run()
        b = FastSimulation(FastSimulationConfig(
            n_nodes=80, bits=11, n_files=10, file_min=5, file_max=10,
            overlay_seed=1, workload_seed=1,
        )).run()
        assert np.array_equal(a.node_addresses, b.node_addresses)
        assert np.array_equal(a.forwarded, b.forwarded)
