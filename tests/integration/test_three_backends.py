"""Integration: all three execution styles agree on the same workload.

The library offers three ways to run the paper's simulation:
the vectorized backend (FastSimulation), the reference network driven
directly (SwarmNetwork.download_file), and the cadCAD-style model
(one timestep = one download). On a shared overlay and workload all
three must report identical traffic and fairness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cadcad import run_paper_model
from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig


CONFIG = FastSimulationConfig(
    n_nodes=90, bits=11, bucket_size=4, originator_share=0.5,
    n_files=15, file_min=5, file_max=20, overlay_seed=4,
    workload_seed=11,
)


@pytest.fixture(scope="module")
def outcomes():
    fast = FastSimulation(CONFIG).run()

    network = SwarmNetwork(SwarmNetworkConfig(
        overlay=CONFIG.overlay_config(), pricing=CONFIG.pricing,
    ))
    events = CONFIG.workload().materialize(
        network.overlay.address_array(), network.overlay.space
    )
    results = run_paper_model(network, events)
    return fast, network, results


class TestThreeBackendsAgree:
    def test_total_traffic_identical(self, outcomes):
        fast, network, results = outcomes
        assert int(fast.forwarded.sum()) == int(
            network.forwarded_per_node().sum()
        )
        assert results.final_state(0)["total_hops"] == int(
            fast.forwarded.sum()
        )

    def test_per_node_traffic_identical(self, outcomes):
        fast, network, _results = outcomes
        assert np.array_equal(fast.forwarded, network.forwarded_per_node())
        assert np.array_equal(fast.first_hop, network.first_hop_per_node())

    def test_chunk_counts_identical(self, outcomes):
        fast, _network, results = outcomes
        assert results.final_state(0)["chunks_transferred"] == fast.chunks

    def test_fairness_identical(self, outcomes):
        fast, network, results = outcomes
        final = results.final_state(0)
        assert final["f2_gini"] == pytest.approx(fast.f2_gini(), abs=1e-9)
        assert final["f1_gini"] == pytest.approx(fast.f1_gini(), abs=1e-9)
        assert network.fairness().f2_gini == pytest.approx(
            fast.f2_gini(), abs=1e-9
        )

    def test_files_counted(self, outcomes):
        fast, network, results = outcomes
        assert fast.files == CONFIG.n_files
        assert network.files_downloaded == CONFIG.n_files
        assert results.final_state(0)["files_downloaded"] == CONFIG.n_files
