"""End-to-end tests for ``repro-swarm serve`` (live service mode)."""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.backends.config import FastSimulationConfig
from repro.backends.fast import FastSimulation
from repro.cli import main
from repro.errors import ExperimentError, WorkloadError
from repro.serve import run_serve

CONFIG = FastSimulationConfig(
    n_nodes=60, bits=10, bucket_size=4, overlay_seed=5,
    batch_files=8,
)


def request_lines(config, n_files=40, seed=3):
    """NDJSON request lines sampled from the serving overlay."""
    simulation = FastSimulation(config)
    addresses = simulation.overlay.address_array()
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(n_files):
        originator = int(rng.choice(addresses))
        chunks = rng.integers(
            0, simulation.space.size, size=int(rng.integers(2, 6))
        )
        lines.append(json.dumps({
            "originator": originator,
            "chunks": [int(c) for c in chunks],
        }) + "\n")
    return lines


def serve_lines(lines, **kwargs):
    out = io.StringIO()
    run_serve(CONFIG, iter(lines), out, **kwargs)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestRunServe:
    def test_streamed_final_equals_batch_final(self):
        """The byte-identity CI relies on: stream == batch reference."""
        lines = request_lines(CONFIG)
        streamed = io.StringIO()
        batch = io.StringIO()
        run_serve(CONFIG, iter(lines), streamed, max_batch=8)
        run_serve(CONFIG, iter(lines), batch, batch_mode=True)
        streamed_final = streamed.getvalue().splitlines()[-1]
        batch_final = batch.getvalue().splitlines()[-1]
        assert streamed_final == batch_final

    def test_final_is_batch_size_invariant(self):
        lines = request_lines(CONFIG)
        finals = {
            serve_lines(lines, max_batch=max_batch)[-1]["chunks"]
            for max_batch in (1, 8, 1000)
        }
        assert len(finals) == 1

    def test_snapshot_cadence(self):
        lines = request_lines(CONFIG, n_files=40)
        output = serve_lines(lines, max_batch=10, flush_interval=2)
        kinds = [line["type"] for line in output]
        # 4 micro-epochs, snapshot every 2nd, plus the final line.
        assert kinds == ["snapshot", "snapshot", "final"]
        assert output[0]["epochs"] == 2
        assert "epochs" not in output[-1]

    def test_rolling_snapshots_are_monotonic(self):
        lines = request_lines(CONFIG, n_files=40)
        output = serve_lines(lines, max_batch=8)
        snapshots = [li for li in output if li["type"] == "snapshot"]
        chunk_counts = [snap["chunks"] for snap in snapshots]
        assert chunk_counts == sorted(chunk_counts)
        assert len(snapshots) == 5

    def test_empty_input_emits_final_only(self):
        output = serve_lines([])
        assert [line["type"] for line in output] == ["final"]
        assert output[0]["chunks"] == 0

    def test_accepts_ndjson_trace_header(self):
        header = json.dumps({
            "format": "repro-swarm-trace/ndjson-1",
            "bits": CONFIG.bits, "n_nodes": CONFIG.n_nodes,
        }) + "\n"
        lines = request_lines(CONFIG, n_files=10)
        with_header = serve_lines([header] + lines)
        without = serve_lines(lines)
        assert with_header[-1] == without[-1]

    def test_trace_header_mismatch_rejected(self):
        header = json.dumps({
            "format": "repro-swarm-trace/ndjson-1",
            "bits": 16, "n_nodes": CONFIG.n_nodes,
        }) + "\n"
        with pytest.raises(WorkloadError, match="--bits"):
            serve_lines([header])
        header = json.dumps({
            "format": "repro-swarm-trace/ndjson-1",
            "bits": CONFIG.bits, "n_nodes": 1000,
        }) + "\n"
        with pytest.raises(WorkloadError, match="--nodes"):
            serve_lines([header])

    def test_rejects_bad_flush_interval(self):
        with pytest.raises(WorkloadError, match="flush_interval"):
            serve_lines([], flush_interval=0)

    def test_scenario_serving_matches_batch(self):
        """Churn dynamics stream exactly (micro-epoch = engine epoch)."""
        config = FastSimulationConfig(
            n_nodes=60, bits=10, bucket_size=4, overlay_seed=5,
            batch_files=8, scenario="churn:rate=0.25",
        )
        lines = request_lines(config)
        streamed = io.StringIO()
        batch = io.StringIO()
        run_serve(config, iter(lines), streamed, max_batch=8,
                  n_epochs=5)
        run_serve(config, iter(lines), batch, batch_mode=True)
        assert (streamed.getvalue().splitlines()[-1]
                == batch.getvalue().splitlines()[-1])
        final = json.loads(streamed.getvalue().splitlines()[-1])
        assert final["unavailable"] > 0  # the churn actually bit


class TestServeCli:
    def test_cli_serve_file_input(self, tmp_path, capsys):
        path = tmp_path / "requests.ndjson"
        path.write_text("".join(request_lines(CONFIG, n_files=10)))
        code = main([
            "serve", "--input", str(path), "--nodes", "60",
            "--bits", "10", "--overlay-seed", "5",
            "--max-batch", "4",
        ])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert lines[-1]["type"] == "final"
        assert lines[-1]["files"] == 10

    def test_cli_scenario_without_epochs_rejected(self, capsys):
        with pytest.raises(ExperimentError, match="--epochs"):
            main([
                "serve", "--input", "-", "--nodes", "60",
                "--bits", "10", "--scenario", "churn:rate=0.1",
            ])
        capsys.readouterr()

    def test_sigterm_flushes_final_line(self, tmp_path):
        """A killed server still emits its final aggregate line."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--nodes", "60", "--bits", "10", "--overlay-seed", "5",
             "--max-batch", "2"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env,
            cwd="/root/repo",
        )
        try:
            for line in request_lines(CONFIG, n_files=6):
                process.stdin.write(line)
            process.stdin.flush()
            # Give the server a moment to route, then terminate it
            # mid-stream with the pipe still open.
            time.sleep(2.0)
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            process.kill()
        assert process.returncode == 0, stderr
        lines = [json.loads(line) for line in stdout.splitlines()]
        assert lines, "no output before SIGTERM"
        assert lines[-1]["type"] == "final"
        assert lines[-1]["files"] > 0
