"""Integration: every vectorized backend agrees with the reference.

This is the central cross-validation promised in DESIGN.md §4, now
expressed through the backend protocol: on a shared overlay and
workload, each fast engine (batched and legacy per-file) and the
object-oriented SwarmNetwork adapter must produce identical forwarded
counts, first-hop counts, and (up to float summation order) incomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import FastSimulationConfig, get_backend


CONFIGS = [
    FastSimulationConfig(
        n_nodes=120, bits=12, bucket_size=4, originator_share=0.2,
        n_files=40, file_min=10, file_max=30, overlay_seed=1,
        workload_seed=2,
    ),
    FastSimulationConfig(
        n_nodes=120, bits=12, bucket_size=20, originator_share=1.0,
        n_files=40, file_min=10, file_max=30, overlay_seed=1,
        workload_seed=2,
    ),
    FastSimulationConfig(
        n_nodes=90, bits=11, bucket_size=4, bucket_zero=16,
        originator_share=0.5, n_files=30, file_min=5, file_max=15,
        overlay_seed=8, workload_seed=3, pricing="proximity",
    ),
]

CONFIG_IDS = ["k4-skew", "k20-uniform", "bucket0-proximity"]

FAST_BACKENDS = ["fast", "fast-perfile"]


@pytest.fixture(scope="module")
def reference_results():
    cache: dict[int, object] = {}

    def result_for(config):
        key = id(config)
        if key not in cache:
            cache[key] = get_backend("reference").prepare(config).run()
        return cache[key]

    return result_for


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
class TestBackendsAgree:
    def test_forwarded_counts_identical(self, config, backend,
                                        reference_results):
        fast = get_backend(backend).prepare(config).run()
        reference = reference_results(config)
        assert np.array_equal(fast.forwarded, reference.forwarded)

    def test_first_hop_counts_identical(self, config, backend,
                                        reference_results):
        fast = get_backend(backend).prepare(config).run()
        reference = reference_results(config)
        assert np.array_equal(fast.first_hop, reference.first_hop)

    def test_incomes_match(self, config, backend, reference_results):
        fast = get_backend(backend).prepare(config).run()
        reference = reference_results(config)
        assert np.allclose(fast.income, reference.income)

    def test_traffic_counters_identical(self, config, backend,
                                        reference_results):
        fast = get_backend(backend).prepare(config).run()
        reference = reference_results(config)
        assert fast.chunks == reference.chunks
        assert fast.total_hops == reference.total_hops
        assert fast.local_hits == reference.local_hits
        assert fast.hop_histogram == reference.hop_histogram

    def test_fairness_metrics_match(self, config, backend,
                                    reference_results):
        fast = get_backend(backend).prepare(config).run()
        reference = reference_results(config)
        assert fast.f2_gini() == pytest.approx(
            reference.f2_gini(), abs=1e-9
        )
        assert fast.f1_gini() == pytest.approx(
            reference.f1_gini(), abs=1e-9
        )
