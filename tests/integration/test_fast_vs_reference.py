"""Integration: the vectorized and reference simulators agree exactly.

This is the central cross-validation promised in DESIGN.md §4: on a
shared overlay and workload, the numpy backend and the object-oriented
SwarmNetwork must produce identical forwarded counts, first-hop
counts, and (up to float summation order) incomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fast import FastSimulation, FastSimulationConfig
from repro.swarm.chunk import FileManifest
from repro.swarm.network import SwarmNetwork, SwarmNetworkConfig


def reference_run(config: FastSimulationConfig) -> SwarmNetwork:
    """Replay the fast config's workload on the reference simulator."""
    network = SwarmNetwork(SwarmNetworkConfig(
        overlay=config.overlay_config(),
        pricing=config.pricing,
    ))
    workload = config.workload()
    nodes = network.overlay.address_array()
    for event in workload.events(nodes, network.overlay.space):
        manifest = FileManifest(
            file_id=event.file_id,
            chunk_addresses=tuple(int(a) for a in event.chunk_addresses),
        )
        network.download_file(int(event.originator), manifest)
    return network


CONFIGS = [
    FastSimulationConfig(
        n_nodes=120, bits=12, bucket_size=4, originator_share=0.2,
        n_files=40, file_min=10, file_max=30, overlay_seed=1,
        workload_seed=2,
    ),
    FastSimulationConfig(
        n_nodes=120, bits=12, bucket_size=20, originator_share=1.0,
        n_files=40, file_min=10, file_max=30, overlay_seed=1,
        workload_seed=2,
    ),
    FastSimulationConfig(
        n_nodes=90, bits=11, bucket_size=4, bucket_zero=16,
        originator_share=0.5, n_files=30, file_min=5, file_max=15,
        overlay_seed=8, workload_seed=3, pricing="proximity",
    ),
]


@pytest.mark.parametrize("config", CONFIGS,
                         ids=["k4-skew", "k20-uniform", "bucket0-proximity"])
class TestBackendsAgree:
    def test_forwarded_counts_identical(self, config):
        fast = FastSimulation(config).run()
        reference = reference_run(config)
        assert np.array_equal(
            fast.forwarded, reference.forwarded_per_node()
        )

    def test_first_hop_counts_identical(self, config):
        fast = FastSimulation(config).run()
        reference = reference_run(config)
        assert np.array_equal(
            fast.first_hop, reference.first_hop_per_node()
        )

    def test_incomes_match(self, config):
        fast = FastSimulation(config).run()
        reference = reference_run(config)
        assert np.allclose(fast.income, reference.income_per_node())

    def test_fairness_metrics_match(self, config):
        fast = FastSimulation(config).run()
        reference = reference_run(config)
        assert fast.f2_gini() == pytest.approx(
            reference.fairness().f2_gini, abs=1e-9
        )
        assert fast.f1_gini() == pytest.approx(
            reference.paper_f1().f1_gini, abs=1e-9
        )
