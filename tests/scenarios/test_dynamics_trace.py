"""Dynamics traces: event JSON, the container, recording, and replay.

The load-bearing guarantee: recording a scenario's schedule with
:func:`~repro.scenarios.trace.record_dynamics` and replaying the file
through :class:`~repro.scenarios.library.TraceReplay` is **equal** at
the schedule level and **bit-identical** at the simulation level to
running the source scenario directly — including under composition,
where per-stream alive masks must survive the round trip.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.backends import run_simulation
from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.scenarios import (
    CacheState,
    Churn,
    Compose,
    NodeJoin,
    PolicyOverride,
    TopologyDelta,
    TraceReplay,
    event_from_json,
    event_to_json,
    parse_scenario,
)
from repro.scenarios.base import ScenarioContext
from repro.scenarios.trace import (
    DYNAMICS_TRACE_FORMAT,
    DynamicsTrace,
    record_dynamics,
)

CTX = ScenarioContext(
    n_nodes=40, n_epochs=6, space_size=256, overlay_seed=42
)

EVENTS = [
    TopologyDelta(leaves=(1, 5), joins=(2,)),
    TopologyDelta(),
    CacheState(enabled=True, capacity=64),
    CacheState(enabled=False, capacity=0),
    PolicyOverride(unpaid_origins=(3, 7)),
    PolicyOverride(unpaid_origins=(), origin_focus=(1, 2, 3)),
    PolicyOverride(),
]


class TestEventJson:
    @pytest.mark.parametrize("event", EVENTS, ids=repr)
    def test_exact_round_trip(self, event):
        payload = json.loads(json.dumps(event_to_json(event)))
        assert event_from_json(payload) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            event_from_json({"kind": "quantum"})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            event_from_json([1, 2])

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            event_from_json({"kind": "topology", "leaves": [1]})


class TestDynamicsTraceContainer:
    def test_save_load_round_trip(self, tmp_path):
        trace = record_dynamics(Churn(rate=0.2, recompute=True), CTX)
        path = tmp_path / "dynamics.json"
        trace.save(path)
        loaded = DynamicsTrace.load(path)
        assert loaded == trace
        assert loaded.streams == trace.streams
        assert loaded.source == "churn:rate=0.2,recompute=True"
        assert loaded.recompute_storers is True
        assert loaded.bits == 8
        assert loaded.overlay_seed == 42

    def test_record_requires_overlay_seed(self):
        anonymous = ScenarioContext(n_nodes=40, n_epochs=6, space_size=256)
        with pytest.raises(ConfigurationError, match="overlay seed"):
            record_dynamics(Churn(rate=0.2), anonymous)

    def test_composition_records_one_stream_per_child(self):
        scenario = Compose(Churn(rate=0.2), NodeJoin(fraction=0.3))
        trace = record_dynamics(scenario, CTX)
        assert len(trace.streams) == 2
        assert trace.streams == scenario.stream_schedules(CTX)
        assert trace.recompute_storers is True  # NodeJoin re-homes

    def test_describe_mentions_shape(self):
        trace = record_dynamics(Churn(rate=0.2), CTX)
        text = trace.describe()
        assert "6 epoch(s)" in text
        assert "40 nodes" in text

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            DynamicsTrace.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = record_dynamics(Churn(rate=0.2), CTX)
        path = tmp_path / "truncated.json"
        trace.save(path)
        path.write_text(path.read_text()[:-40])
        with pytest.raises(ConfigurationError, match="truncated or corrupt"):
            DynamicsTrace.load(path)

    def test_wrong_format_tag_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else/9"}))
        with pytest.raises(ConfigurationError, match="format tag"):
            DynamicsTrace.load(path)

    def test_request_trace_file_rejected(self, tmp_path):
        # The sibling format must not be confused for this one.
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({
            "format": "repro-swarm-trace/1", "bits": 8, "n_nodes": 4,
            "overlay_seed": 1, "events": [],
        }))
        with pytest.raises(ConfigurationError, match="request trace"):
            DynamicsTrace.load(path)

    def test_missing_header_field_rejected(self, tmp_path):
        path = tmp_path / "headerless.json"
        path.write_text(json.dumps({
            "format": DYNAMICS_TRACE_FORMAT, "bits": 8,
        }))
        with pytest.raises(ConfigurationError, match="header field"):
            DynamicsTrace.load(path)

    def test_bad_event_kind_rejected(self, tmp_path):
        trace = record_dynamics(Churn(rate=0.2), CTX)
        document = trace.to_json()
        document["streams"][0][0] = [{"kind": "quantum"}]
        path = tmp_path / "badevent.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            DynamicsTrace.load(path)

    @pytest.mark.parametrize("field, value", [
        ("bits", 0), ("bits", -1), ("bits", 65),
        ("n_nodes", 0), ("n_epochs", -1),
    ])
    def test_out_of_range_header_values_rejected(self, tmp_path, field,
                                                 value):
        trace = record_dynamics(Churn(rate=0.2), CTX)
        document = trace.to_json()
        document[field] = value
        path = tmp_path / "badheader.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="cannot read"):
            DynamicsTrace.load(path)

    def test_stream_epoch_count_mismatch_rejected(self, tmp_path):
        trace = record_dynamics(Churn(rate=0.2), CTX)
        document = trace.to_json()
        document["streams"][0] = document["streams"][0][:-1]
        path = tmp_path / "short.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="header says"):
            DynamicsTrace.load(path)


class TestCheckContext:
    @pytest.fixture()
    def trace(self):
        return record_dynamics(Churn(rate=0.2), CTX)

    def test_matching_context_accepted(self, trace):
        trace.check_context(CTX)

    def test_overlay_seed_none_skips_that_check(self, trace):
        trace.check_context(dataclasses.replace(CTX, overlay_seed=None))

    def test_fewer_epochs_accepted(self, trace):
        trace.check_context(dataclasses.replace(CTX, n_epochs=3))

    @pytest.mark.parametrize("override, message", [
        ({"space_size": 512}, "8-bit space"),
        ({"n_nodes": 39}, "dense node indices"),
        ({"overlay_seed": 7}, "overlay seed"),
        ({"n_epochs": 7}, "record the trace with at least"),
    ])
    def test_mismatches_rejected(self, trace, override, message):
        bad = dataclasses.replace(CTX, **override)
        with pytest.raises(ConfigurationError, match=message):
            trace.check_context(bad)


class TestTraceReplayScenario:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "dynamics.json"
        record_dynamics(
            Compose(Churn(rate=0.2, recompute=True),
                    NodeJoin(fraction=0.3)),
            CTX,
        ).save(path)
        return path

    def test_parse_and_spec_round_trip(self, trace_path):
        scenario = parse_scenario(f"trace:path={trace_path}")
        assert isinstance(scenario, TraceReplay)
        assert scenario.spec() == f"trace:path={trace_path}"

    def test_missing_file_fails_at_construction(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            TraceReplay(path=str(tmp_path / "nope.json"))

    def test_schedule_equals_source_schedule(self, trace_path):
        source = Compose(Churn(rate=0.2, recompute=True),
                         NodeJoin(fraction=0.3))
        replay = TraceReplay(path=str(trace_path))
        assert replay.schedule(CTX) == source.schedule(CTX)
        assert replay.stream_schedules(CTX) == source.stream_schedules(CTX)
        assert replay.recompute_storers is True

    def test_replay_truncates_to_shorter_context(self, trace_path):
        short = dataclasses.replace(CTX, n_epochs=4)
        replay = TraceReplay(path=str(trace_path))
        source = Compose(Churn(rate=0.2, recompute=True),
                         NodeJoin(fraction=0.3))
        # The source re-draws for 4 epochs; the trace replays the
        # recorded 6-epoch prefix — for Churn those agree epoch by
        # epoch (its draw stream is per-epoch), so the prefix matches.
        assert len(replay.schedule(short)) == 4
        assert replay.stream_schedules(short) == tuple(
            stream[:4] for stream in source.stream_schedules(CTX)
        )

    def test_replay_composes_with_live_scenarios(self, trace_path):
        composed = parse_scenario(
            f"trace:path={trace_path}+caching:size=16"
        )
        streams = composed.stream_schedules(CTX)
        assert len(streams) == 3  # two recorded + one live
        assert streams[2][0] == (CacheState(enabled=True, capacity=16),)


#: Small multi-epoch simulation shape shared by the bit-identity tests.
SIM = dict(
    n_nodes=120, bits=12, bucket_size=4, originator_share=0.5,
    n_files=30, file_min=4, file_max=12, overlay_seed=42,
    workload_seed=7, batch_files=8,
)


def assert_results_identical(a, b):
    assert np.array_equal(a.forwarded, b.forwarded)
    assert np.array_equal(a.first_hop, b.first_hop)
    assert a.hop_histogram == b.hop_histogram
    assert np.array_equal(a.income, b.income)
    assert np.array_equal(a.expenditure, b.expenditure)
    assert (a.fallbacks, a.unavailable, a.cache_hits, a.local_hits) == (
        b.fallbacks, b.unavailable, b.cache_hits, b.local_hits
    )


class TestReplayBitIdentity:
    @pytest.mark.parametrize("spec", [
        "churn:rate=0.3,recompute=true",
        "join:fraction=0.4,waves=2+churn:rate=0.1",
        "demand:share=0.2+freeriding:fraction=0.3",
    ])
    def test_replay_matches_direct_run(self, tmp_path, spec):
        config = FastSimulationConfig(**SIM, scenario=spec)
        path = tmp_path / "dynamics.json"
        record_dynamics(
            config.scenario_stack(), config.scenario_context()
        ).save(path)
        direct = run_simulation(config)
        replayed = run_simulation(
            dataclasses.replace(config, scenario=f"trace:path={path}")
        )
        assert_results_identical(direct, replayed)

    def test_composed_topology_semantics_survive_round_trip(self, tmp_path):
        # join+churn is the composition whose semantics depend on
        # per-stream alive masks: a single merged stream would let
        # churn's joins resurrect the join storm's offline cohort.
        spec = "join:fraction=0.5,waves=1+churn:rate=0.2,recompute=true"
        config = FastSimulationConfig(**SIM, scenario=spec)
        path = tmp_path / "dynamics.json"
        record_dynamics(
            config.scenario_stack(), config.scenario_context()
        ).save(path)
        direct = run_simulation(config)
        replayed = run_simulation(
            dataclasses.replace(config, scenario=f"trace:path={path}")
        )
        assert_results_identical(direct, replayed)
        assert direct.unavailable > 0  # the dynamics actually bit

    def test_replay_composes_on_top_of_live_caching(self, tmp_path):
        # Record only the churn; compose the cache model live at
        # replay time — must equal composing both live.
        config = FastSimulationConfig(
            **SIM, catalog_size=20,
            scenario="churn:rate=0.2,recompute=true",
        )
        path = tmp_path / "dynamics.json"
        record_dynamics(
            config.scenario_stack(), config.scenario_context()
        ).save(path)
        direct = run_simulation(dataclasses.replace(
            config,
            scenario="churn:rate=0.2,recompute=true+caching:size=64",
        ))
        replayed = run_simulation(dataclasses.replace(
            config, scenario=f"trace:path={path}+caching:size=64",
        ))
        assert_results_identical(direct, replayed)
        assert replayed.cache_hits > 0

    def test_wrong_overlay_rejected_at_run_time(self, tmp_path):
        config = FastSimulationConfig(
            **SIM, scenario="churn:rate=0.2"
        )
        path = tmp_path / "dynamics.json"
        record_dynamics(
            config.scenario_stack(), config.scenario_context()
        ).save(path)
        wrong_seed = dataclasses.replace(
            config, overlay_seed=99, scenario=f"trace:path={path}"
        )
        with pytest.raises(ConfigurationError, match="overlay seed"):
            run_simulation(wrong_seed)
