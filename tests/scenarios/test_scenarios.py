"""Unit tests for the scenario layer: events, library, grammar, plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    CacheState,
    Churn,
    Compose,
    DemandShift,
    EpochPlan,
    FreeRiding,
    NodeJoin,
    PathCaching,
    PolicyOverride,
    ScenarioContext,
    TopologyDelta,
    parse_scenario,
    scenario_help,
)
from repro.scenarios.plan import CacheRuntime

CTX = ScenarioContext(n_nodes=40, n_epochs=6, space_size=256)


class TestEvents:
    def test_topology_delta_normalizes_and_validates(self):
        delta = TopologyDelta(leaves=np.array([3, 1]), joins=(2,))
        assert delta.leaves == (3, 1)
        assert delta.joins == (2,)
        assert bool(delta)
        assert not TopologyDelta()
        with pytest.raises(ConfigurationError):
            TopologyDelta(leaves=(-1,))

    def test_cache_state_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheState(capacity=-1)

    def test_policy_override_distinguishes_none_from_empty(self):
        unchanged = PolicyOverride()
        assert unchanged.unpaid_origins is None
        assert unchanged.origin_focus is None
        cleared = PolicyOverride(unpaid_origins=(), origin_focus=())
        assert cleared.unpaid_origins == ()
        assert cleared.origin_focus == ()


class TestLibrary:
    def test_churn_schedule_matches_legacy_draw_stream(self):
        scenario = Churn(rate=0.25, seed=5)
        schedule = scenario.schedule(CTX)
        assert len(schedule) == CTX.n_epochs
        rng = np.random.default_rng(5)
        alive = np.ones(CTX.n_nodes, dtype=bool)
        for events in schedule:
            (delta,) = events
            expected = rng.random(CTX.n_nodes) >= 0.25
            alive[list(delta.leaves)] = False
            alive[list(delta.joins)] = True
            assert np.array_equal(alive, expected)

    def test_churn_validates_rate(self):
        with pytest.raises(ConfigurationError):
            Churn(rate=1.5)

    def test_caching_emits_single_head_event(self):
        schedule = PathCaching(size=16).schedule(CTX)
        assert schedule[0] == (CacheState(enabled=True, capacity=16),)
        assert all(epoch == () for epoch in schedule[1:])

    def test_freeriding_matches_backend_draw(self):
        schedule = FreeRiding(fraction=0.3, seed=13).schedule(CTX)
        (override,) = schedule[0]
        expected = np.random.default_rng(13).choice(
            CTX.n_nodes, size=round(0.3 * CTX.n_nodes), replace=False
        )
        assert set(override.unpaid_origins) == set(int(v) for v in expected)

    def test_node_join_conserves_the_cohort(self):
        schedule = NodeJoin(fraction=0.5, waves=3, seed=2).schedule(CTX)
        (initial,) = schedule[0]
        joined = [
            index
            for events in schedule[1:]
            for event in events
            for index in event.joins
        ]
        assert sorted(joined) == sorted(initial.leaves)
        assert NodeJoin.recompute_storers

    def test_demand_shift_draws_fresh_hot_sets(self):
        schedule = DemandShift(share=0.2, seed=1).schedule(CTX)
        hot_sets = [events[0].origin_focus for events in schedule]
        assert all(len(hot) == round(0.2 * CTX.n_nodes) for hot in hot_sets)
        assert len(set(hot_sets)) > 1

    def test_schedules_are_deterministic(self):
        for scenario in (Churn(rate=0.2), PathCaching(size=8),
                         FreeRiding(), NodeJoin(), DemandShift()):
            assert scenario.schedule(CTX) == scenario.schedule(CTX)


class TestCompose:
    def test_merge_concatenates_in_child_order(self):
        churn, caching = Churn(rate=0.2), PathCaching(size=4)
        merged = Compose(churn, caching).schedule(CTX)
        churn_schedule = churn.schedule(CTX)
        caching_schedule = caching.schedule(CTX)
        for epoch in range(CTX.n_epochs):
            assert merged[epoch] == (
                churn_schedule[epoch] + caching_schedule[epoch]
            )

    def test_single_child_equals_bare(self):
        scenario = Churn(rate=0.3, seed=7)
        assert Compose(scenario).schedule(CTX) == scenario.schedule(CTX)

    def test_nested_compositions_flatten(self):
        a, b, c = Churn(rate=0.1), PathCaching(), FreeRiding()
        assert Compose(Compose(a, b), c) == Compose(a, b, c)
        assert (Compose(Compose(a, b), c).schedule(CTX)
                == Compose(a, b, c).schedule(CTX))

    def test_recompute_is_any_child(self):
        assert not Compose(Churn(rate=0.1), PathCaching()).recompute_storers
        assert Compose(PathCaching(), NodeJoin()).recompute_storers
        assert Compose(Churn(rate=0.1, recompute=True)).recompute_storers


class TestParse:
    def test_round_trips_with_spec(self):
        for text in ("churn:rate=0.1", "caching:size=64",
                     "churn:rate=0.2,recompute=true+caching",
                     "join:fraction=0.4,waves=3+freeriding:fraction=0.2",
                     "demand:share=0.25,seed=4"):
            scenario = parse_scenario(text)
            assert parse_scenario(scenario.spec()) == scenario

    def test_single_item_is_bare_not_composed(self):
        assert parse_scenario("churn:rate=0.1") == Churn(rate=0.1)
        assert isinstance(parse_scenario("churn:rate=0.1+caching"),
                          Compose)

    def test_unknown_kind_lists_grammar(self):
        with pytest.raises(ConfigurationError, match="churn"):
            parse_scenario("warp:factor=9")

    def test_unknown_parameter_lists_fields(self):
        with pytest.raises(ConfigurationError, match="rate"):
            parse_scenario("churn:speed=0.1")

    def test_missing_required_parameter(self):
        with pytest.raises(ConfigurationError, match="rate"):
            parse_scenario("churn")

    def test_bad_value_and_malformed_items(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_scenario("churn:rate=fast")
        with pytest.raises(ConfigurationError, match="empty item"):
            parse_scenario("churn:rate=0.1+")
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_scenario("churn:rate")
        with pytest.raises(ConfigurationError):
            parse_scenario("")

    def test_help_names_every_kind(self):
        text = scenario_help()
        for kind in ("churn", "caching", "freeriding", "join", "demand"):
            assert kind in text


class TestCacheRuntime:
    def test_unbounded_is_plain_mask(self):
        cache = CacheRuntime(space_size=32, capacity=0)
        cache.insert(np.array([3, 5, 3]))
        assert cache.cached_count == 2
        assert cache.mask[[3, 5]].all()

    def test_fifo_eviction_in_first_insertion_order(self):
        cache = CacheRuntime(space_size=32, capacity=3)
        cache.insert(np.array([7, 2, 9]))
        cache.insert(np.array([4]))  # evicts 7, the oldest
        assert cache.cached_count == 3
        assert not cache.mask[7]
        assert cache.mask[[2, 9, 4]].all()

    def test_negative_cache_size_fails_at_config_time(self):
        with pytest.raises(ConfigurationError, match="cache size"):
            PathCaching(size=-5)
        from repro.backends.config import FastSimulationConfig

        with pytest.raises(ConfigurationError, match="cache size"):
            FastSimulationConfig(scenario="caching:size=-5")

    def test_capacity_change_reconciles_the_ring(self):
        # Unbounded -> bounded: mask entries adopt address order and
        # the overflow is evicted immediately, oldest (lowest) first.
        cache = CacheRuntime(space_size=32, capacity=0)
        cache.insert(np.array([9, 2, 7]))
        cache.set_capacity(2)
        assert cache.cached_count == 2
        assert not cache.mask[2]
        assert cache.mask[7] and cache.mask[9]
        # Bound still enforced for subsequent inserts.
        cache.insert(np.array([5]))
        assert cache.cached_count == 2
        assert not cache.mask[7]
        # Lowering trims immediately; widening back to 0 is unbounded.
        cache.set_capacity(1)
        assert cache.cached_count == 1
        cache.set_capacity(0)
        cache.insert(np.array([1, 2, 3]))
        assert cache.cached_count == 4

    def test_reinsert_does_not_refresh_position(self):
        cache = CacheRuntime(space_size=32, capacity=2)
        cache.insert(np.array([1, 2]))
        # 1 is already cached, so only 3 arrives — and 1, still the
        # oldest insertion, is the one evicted (FIFO, not LRU).
        cache.insert(np.array([1, 3]))
        assert not cache.mask[1]
        assert cache.mask[2] and cache.mask[3]
        assert cache.cached_count == 2


class TestEpochPlan:
    @staticmethod
    def _plan(scenario, ctx=CTX):
        addresses = np.random.default_rng(0).choice(
            ctx.space_size, size=ctx.n_nodes, replace=False
        ).astype(np.uint64)
        from repro.kademlia.table import alive_storer_table
        from repro.perf.table_cache import EpochTableCache

        base = alive_storer_table(
            addresses, np.ones(ctx.n_nodes, bool), np.dtype(np.uint16),
            ctx.space_size,
        )
        return EpochPlan(
            scenario, ctx, table_fingerprint="test-base",
            base_storers=base, addresses=addresses,
            epoch_tables=EpochTableCache(),
        )

    def test_epochs_must_be_consumed_in_order(self):
        plan = self._plan(Churn(rate=0.2))
        plan.epoch(0)
        with pytest.raises(ConfigurationError, match="order"):
            plan.epoch(2)

    def test_static_scenario_never_materializes_alive(self):
        plan = self._plan(Compose(PathCaching(size=8), FreeRiding()))
        for epoch in range(CTX.n_epochs):
            state = plan.epoch(epoch)
            assert state.alive is None
            assert state.storers is None
        assert state.cache is not None
        assert state.unpaid is not None

    def test_churn_without_recompute_has_no_storers(self):
        plan = self._plan(Churn(rate=0.3))
        state = plan.epoch(0)
        assert state.alive is not None
        assert state.storers is None

    def test_recompute_storers_are_always_alive(self):
        plan = self._plan(Churn(rate=0.3, recompute=True, seed=11))
        for epoch in range(CTX.n_epochs):
            state = plan.epoch(epoch)
            if state.storers is not None:
                assert state.alive[state.storers.astype(np.int64)].all()

    def test_origin_focus_builds_modular_map(self):
        plan = self._plan(DemandShift(share=0.1, seed=3))
        state = plan.epoch(0)
        focus = np.asarray(
            DemandShift(share=0.1, seed=3).schedule(CTX)[0][0].origin_focus
        )
        assert np.array_equal(
            state.origin_map,
            focus[np.arange(CTX.n_nodes) % focus.size],
        )

    def test_composed_topologies_keep_private_alive_streams(self):
        """Churn joins must not resurrect a join storm's cohort."""
        ctx = ScenarioContext(n_nodes=100, n_epochs=6, space_size=256)
        churn = Churn(rate=0.3, seed=5)
        storm = NodeJoin(fraction=0.5, waves=2, seed=2)
        plan = self._plan(Compose(churn, storm), ctx)

        # Reference streams, each computed independently.
        churn_alive = np.ones(ctx.n_nodes, dtype=bool)
        storm_alive = np.ones(ctx.n_nodes, dtype=bool)
        churn_schedule = churn.schedule(ctx)
        storm_schedule = storm.schedule(ctx)
        for epoch in range(ctx.n_epochs):
            state = plan.epoch(epoch)
            for delta, mask in ((churn_schedule[epoch], churn_alive),
                                (storm_schedule[epoch], storm_alive)):
                for event in delta:
                    mask[list(event.leaves)] = False
                    mask[list(event.joins)] = True
            assert np.array_equal(state.alive, churn_alive & storm_alive)
            # The still-offline cohort stays offline, churn or not.
            offline_cohort = np.flatnonzero(~storm_alive)
            assert not state.alive[offline_cohort].any()

    def test_epoch_count_mismatch_rejected(self):
        class Broken(Churn):
            def schedule(self, ctx):
                return super().schedule(ctx)[:-1]

        with pytest.raises(ConfigurationError, match="epoch"):
            self._plan(Broken(rate=0.2))
