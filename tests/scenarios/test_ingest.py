"""Tests for the join/leave membership-log importer."""

from __future__ import annotations

import json

import pytest

from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.cli import main
from repro.errors import ConfigurationError
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.scenarios.events import TopologyDelta
from repro.scenarios.ingest import import_dynamics
from repro.scenarios.trace import DynamicsTrace


@pytest.fixture(scope="module")
def overlay():
    return Overlay.build(OverlayConfig(
        n_nodes=60, bits=10, limits=BucketLimits.uniform(4), seed=5,
    ))


def log_line(ts, event, node):
    return json.dumps({"ts": ts, "event": event, "node": node}) + "\n"


class TestImportDynamics:
    def test_buckets_onto_epoch_grid(self, overlay):
        addresses = overlay.address_array()
        member = int(addresses[3])
        log = [
            log_line(0.0, "leave", member),
            log_line(4.9, "join", member),
            log_line(5.1, "leave", "peerX"),
            log_line(10.0, "join", "peerX"),
        ]
        trace, summary = import_dynamics(
            log, overlay=overlay, n_epochs=2
        )
        assert summary.events == 4
        assert summary.joins == 2
        assert summary.leaves == 2
        assert summary.n_epochs == 2
        assert summary.span_seconds == 10.0
        assert summary.direct_nodes == 2
        assert summary.hashed_nodes == 2
        assert trace.n_epochs == 2
        assert len(trace.streams) == 1
        schedule = trace.streams[0]
        # width = 10/2 = 5: first two events land in epoch 0, the
        # rest (5.1, 10.0 clamped) in epoch 1, order preserved.
        assert schedule[0] == (
            TopologyDelta(leaves=(3,)), TopologyDelta(joins=(3,)),
        )
        assert len(schedule[1]) == 2
        assert schedule[1][0].leaves == schedule[1][1].joins

    def test_epoch_seconds_grid(self, overlay):
        log = [
            log_line(0.0, "down", 12345),
            log_line(25.0, "up", 12345),
        ]
        trace, summary = import_dynamics(
            log, overlay=overlay, epoch_seconds=10.0
        )
        assert summary.n_epochs == 3
        assert [len(epoch) for epoch in trace.streams[0]] == [1, 0, 1]

    def test_single_timestamp_log(self, overlay):
        trace, summary = import_dynamics(
            [log_line(7.0, "leave", "p")], overlay=overlay, n_epochs=3
        )
        assert summary.span_seconds == 0.0
        assert [len(e) for e in trace.streams[0]] == [1, 0, 0]

    def test_aliases_and_field_variants(self, overlay):
        log = [
            json.dumps({"time": 0.0, "action": "connect",
                        "peer": "a"}) + "\n",
            json.dumps({"time": 1.0, "action": "disconnect",
                        "peer": "a"}) + "\n",
        ]
        trace, summary = import_dynamics(
            log, overlay=overlay, n_epochs=1
        )
        assert summary.joins == 1
        assert summary.leaves == 1
        # Same peer id -> same dense node index both times.
        epoch = trace.streams[0][0]
        assert epoch[0].joins == epoch[1].leaves

    def test_requires_exactly_one_grid_parameter(self, overlay):
        with pytest.raises(ConfigurationError, match="exactly one"):
            import_dynamics([], overlay=overlay)
        with pytest.raises(ConfigurationError, match="exactly one"):
            import_dynamics(
                [], overlay=overlay, n_epochs=2, epoch_seconds=5.0
            )
        with pytest.raises(ConfigurationError, match="n_epochs"):
            import_dynamics([], overlay=overlay, n_epochs=0)
        with pytest.raises(ConfigurationError, match="epoch_seconds"):
            import_dynamics([], overlay=overlay, epoch_seconds=0.0)

    def test_bad_lines_name_the_line(self, overlay):
        with pytest.raises(ConfigurationError, match="line 1"):
            import_dynamics(["{nope\n"], overlay=overlay, n_epochs=1)
        with pytest.raises(ConfigurationError, match="line 1"):
            import_dynamics(
                [log_line("soon", "join", "p")],
                overlay=overlay, n_epochs=1,
            )
        with pytest.raises(ConfigurationError, match="kind"):
            import_dynamics(
                [log_line(0.0, "flap", "p")],
                overlay=overlay, n_epochs=1,
            )
        with pytest.raises(ConfigurationError, match="fields"):
            import_dynamics(
                ['{"ts": 0.0}\n'], overlay=overlay, n_epochs=1
            )

    def test_empty_log_rejected(self, overlay):
        with pytest.raises(ConfigurationError, match="no events"):
            import_dynamics(
                ["# nothing\n"], overlay=overlay, n_epochs=1
            )

    def test_imported_trace_replays_as_scenario(self, overlay,
                                                tmp_path):
        rng_nodes = [int(a) for a in overlay.address_array()[:10]]
        log = [
            log_line(float(i), "leave", node)
            for i, node in enumerate(rng_nodes)
        ]
        trace, _ = import_dynamics(log, overlay=overlay, n_epochs=4)
        path = tmp_path / "dynamics.json"
        trace.save(path)
        config = FastSimulationConfig(
            n_nodes=60, bits=10, bucket_size=4, overlay_seed=5,
            n_files=16, batch_files=4,
            scenario=f"trace:path={path}",
        )
        result = FastSimulation(config).run()
        assert result.files == 16
        # Ten early-epoch departures must actually bite.
        assert result.unavailable > 0


class TestImportDynamicsCli:
    def test_cli_import_round_trips(self, tmp_path, capsys):
        log = tmp_path / "membership.log"
        log.write_text("".join(
            log_line(float(i), "leave" if i % 2 else "join", f"p{i}")
            for i in range(8)
        ))
        out = tmp_path / "dynamics.json"
        code = main([
            "trace", "import-dynamics", str(log), str(out),
            "--nodes", "60", "--bits", "10", "--overlay-seed", "5",
            "--epochs", "2",
        ])
        assert code == 0
        assert "8 membership events" in capsys.readouterr().out
        trace = DynamicsTrace.load(out)
        assert trace.n_epochs == 2
        assert trace.source == "import:membership.log"
        assert trace.n_nodes == 60

    def test_cli_requires_a_grid_flag(self, tmp_path, capsys):
        log = tmp_path / "membership.log"
        log.write_text(log_line(0.0, "join", "p"))
        with pytest.raises(SystemExit):
            main([
                "trace", "import-dynamics", str(log),
                str(tmp_path / "out.json"),
            ])
        capsys.readouterr()
