"""Unit tests for workload distributions (repro.workloads.distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import (
    OriginatorPool,
    PoissonArrivals,
    UniformChunks,
    UniformFileSize,
    ZipfCatalog,
)


class TestOriginatorPool:
    def test_pool_size_rounding(self):
        assert OriginatorPool(share=0.2).pool_size(1000) == 200
        assert OriginatorPool(share=1.0).pool_size(1000) == 1000
        assert OriginatorPool(share=0.001).pool_size(100) == 1

    def test_pool_size_fractional_takes_ceiling(self):
        # Documented ceil semantics: a fractional pool rounds UP, so
        # half-share pools over odd node counts are never understaffed
        # (round() banker's rounding used to give 2 for 0.5 * 5).
        assert OriginatorPool(share=0.5).pool_size(5) == 3
        assert OriginatorPool(share=0.5).pool_size(7) == 4
        assert OriginatorPool(share=0.5).pool_size(6) == 3
        assert OriginatorPool(share=0.3).pool_size(9) == 3
        assert OriginatorPool(share=0.26).pool_size(10) == 3

    def test_pool_size_float_noise_does_not_inflate(self):
        # 0.2 * 120 is 24.000000000000004 in binary floating point; a
        # naive ceil would hand out a 25th member and silently change
        # every existing workload. The epsilon snap keeps it at 24.
        assert OriginatorPool(share=0.2).pool_size(120) == 24
        assert OriginatorPool(share=0.3).pool_size(100) == 30
        assert OriginatorPool(share=0.5).pool_size(120) == 60

    def test_pool_size_never_empty(self):
        assert OriginatorPool(share=0.001).pool_size(10) == 1

    def test_members_subset_and_deterministic(self, rng):
        nodes = np.arange(100)
        pool = OriginatorPool(share=0.3)
        a = pool.members(nodes, np.random.default_rng(5))
        b = pool.members(nodes, np.random.default_rng(5))
        assert np.array_equal(a, b)
        assert len(a) == 30
        assert set(a) <= set(nodes.tolist())

    def test_full_share_returns_everyone(self, rng):
        nodes = np.arange(50)
        members = OriginatorPool(share=1.0).members(nodes, rng)
        assert np.array_equal(members, nodes)

    def test_sample_uniform(self, rng):
        pool = np.arange(10)
        draws = OriginatorPool().sample(pool, 1000, rng)
        assert set(draws.tolist()) <= set(pool.tolist())

    def test_sample_zipf_skews_to_front(self, rng):
        pool = np.arange(20)
        draws = OriginatorPool(zipf_exponent=1.5).sample(pool, 5000, rng)
        counts = np.bincount(draws, minlength=20)
        assert counts[0] > counts[-1] * 2

    def test_zero_share_rejected(self):
        with pytest.raises(WorkloadError):
            OriginatorPool(share=0.0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(WorkloadError):
            OriginatorPool(zipf_exponent=-1)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            OriginatorPool().sample(np.arange(5), -1, rng)


class TestUniformFileSize:
    def test_paper_defaults(self):
        size = UniformFileSize()
        assert size.low == 100 and size.high == 1000

    def test_samples_in_range(self, rng):
        sizes = UniformFileSize(low=5, high=9).sample(1000, rng)
        assert sizes.min() >= 5
        assert sizes.max() <= 9
        assert set(sizes.tolist()) == {5, 6, 7, 8, 9}

    def test_bad_range_rejected(self):
        with pytest.raises(WorkloadError):
            UniformFileSize(low=10, high=5)
        with pytest.raises(WorkloadError):
            UniformFileSize(low=0, high=5)


class TestUniformChunks:
    def test_full_space_coverage(self, rng):
        space = AddressSpace(6)
        draws = UniformChunks().sample(5000, space, rng)
        assert draws.min() >= 0
        assert draws.max() < space.size
        # With 5000 draws over 64 addresses every address appears.
        assert len(set(draws.tolist())) == space.size


class TestZipfCatalog:
    def test_catalog_shape(self, rng):
        space = AddressSpace(10)
        catalog = ZipfCatalog(20, 1.0, UniformFileSize(5, 10), space, rng)
        assert len(catalog) == 20
        for addresses in catalog.files:
            assert 5 <= len(addresses) <= 10

    def test_popularity_skew(self, rng):
        space = AddressSpace(10)
        catalog = ZipfCatalog(10, 1.5, UniformFileSize(2, 3), space, rng)
        draws = [catalog.sample_file(rng)[0] for _ in range(3000)]
        counts = np.bincount(draws, minlength=10)
        assert counts[0] > counts[-1] * 3

    def test_bad_params_rejected(self, rng):
        space = AddressSpace(10)
        with pytest.raises(Exception):
            ZipfCatalog(0, 1.0, UniformFileSize(2, 3), space, rng)
        with pytest.raises(Exception):
            ZipfCatalog(5, 0.0, UniformFileSize(2, 3), space, rng)


class TestPoissonArrivals:
    def test_zero_rate_releases_everything_at_once(self, rng):
        times = PoissonArrivals().sample(50, rng)
        assert np.array_equal(times, np.zeros(50))

    def test_arrivals_are_sorted_and_nonnegative(self, rng):
        times = PoissonArrivals(rate=10.0).sample(200, rng)
        assert times.shape == (200,)
        assert np.all(times >= 0)
        assert np.all(np.diff(times) >= 0)

    def test_mean_spacing_matches_rate(self):
        times = PoissonArrivals(rate=20.0).sample(
            20_000, np.random.default_rng(3)
        )
        spacing = float(np.diff(times).mean())
        assert spacing == pytest.approx(1.0 / 20.0, rel=0.05)

    def test_deterministic_under_seed(self):
        first = PoissonArrivals(rate=5.0).sample(
            100, np.random.default_rng(11)
        )
        again = PoissonArrivals(rate=5.0).sample(
            100, np.random.default_rng(11)
        )
        assert np.array_equal(first, again)

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(rate=-1.0)

    def test_empty_sample(self, rng):
        assert PoissonArrivals(rate=2.0).sample(0, rng).shape == (0,)
