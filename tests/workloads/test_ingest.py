"""Tests for the gateway request-log importer."""

from __future__ import annotations

import json

import pytest

from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.cli import main
from repro.errors import WorkloadError
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.workloads.ingest import (
    RequestImportSummary,
    import_requests,
    stable_hash,
)
from repro.workloads.streams import TraceStream
from repro.workloads.traces import WorkloadTrace


@pytest.fixture(scope="module")
def overlay():
    return Overlay.build(OverlayConfig(
        n_nodes=60, bits=10, limits=BucketLimits.uniform(4), seed=5,
    ))


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("12D3KooWA") == stable_hash("12D3KooWA")

    def test_spreads_distinct_inputs(self):
        values = {stable_hash(f"peer-{i}") % 97 for i in range(200)}
        assert len(values) > 50


class TestImportRequests:
    def test_direct_and_hashed_mapping(self, overlay, tmp_path):
        addresses = overlay.address_array()
        member = int(addresses[7])
        out = tmp_path / "trace.ndjson"
        log = [
            json.dumps({"client": member, "chunks": [3, 9]}) + "\n",
            json.dumps({"client": "peerA", "cid": "bafy1"}) + "\n",
            "# a comment\n",
            "\n",
            json.dumps({"originator": "peerA", "chunk": 12}) + "\n",
        ]
        summary = import_requests(log, out, overlay=overlay)
        assert summary == RequestImportSummary(
            files=3, chunks=4, direct_clients=1, hashed_clients=2,
            direct_chunks=3, hashed_chunks=1, skipped_lines=2,
        )
        trace = WorkloadTrace.load(out)
        events = list(trace)
        assert events[0].originator == member
        assert list(events[0].chunk_addresses) == [3, 9]
        # Same string client on both lines -> same hashed node.
        assert events[1].originator == events[2].originator
        assert int(events[1].originator) in set(
            int(a) for a in addresses
        )

    def test_import_is_deterministic(self, overlay, tmp_path):
        log = [
            json.dumps({"client": f"peer-{i}", "cid": f"c-{i}"}) + "\n"
            for i in range(30)
        ]
        first = tmp_path / "a.ndjson"
        second = tmp_path / "b.ndjson"
        import_requests(log, first, overlay=overlay)
        import_requests(log, second, overlay=overlay)
        assert first.read_bytes() == second.read_bytes()

    def test_imported_trace_replays_through_engine(self, overlay,
                                                   tmp_path):
        out = tmp_path / "trace.ndjson"
        log = [
            json.dumps({"client": f"peer-{i}",
                        "chunks": [f"c-{i}-{j}" for j in range(4)]})
            + "\n"
            for i in range(20)
        ]
        import_requests(log, out, overlay=overlay)
        config = FastSimulationConfig(
            n_nodes=60, bits=10, bucket_size=4, overlay_seed=5,
            n_files=20,
        )
        simulation = FastSimulation(config)
        stream = TraceStream(out, max_batch=8)
        result = simulation.run_stream(stream.batches(
            simulation.overlay.address_array(), simulation.space
        ))
        assert result.files == 20
        assert result.chunks == 80

    def test_bad_lines_name_the_line(self, overlay, tmp_path):
        out = tmp_path / "trace.ndjson"
        with pytest.raises(WorkloadError, match="line 1"):
            import_requests(["{nope\n"], out, overlay=overlay)
        with pytest.raises(WorkloadError, match="line 1"):
            import_requests(["[1]\n"], out, overlay=overlay)
        with pytest.raises(WorkloadError, match="client"):
            import_requests(
                ['{"chunks": [1]}\n'], out, overlay=overlay
            )
        with pytest.raises(WorkloadError, match="content"):
            import_requests(
                ['{"client": 5}\n'], out, overlay=overlay
            )
        with pytest.raises(WorkloadError, match="content"):
            import_requests(
                ['{"client": 5, "chunks": []}\n'], out, overlay=overlay
            )

    def test_empty_log_rejected(self, overlay, tmp_path):
        out = tmp_path / "trace.ndjson"
        with pytest.raises(WorkloadError, match="no events"):
            import_requests(["\n", "# only comments\n"], out,
                            overlay=overlay)


class TestImportRequestsCli:
    def test_cli_import_then_stream(self, tmp_path, capsys):
        log = tmp_path / "gateway.log"
        log.write_text("".join(
            json.dumps({"client": f"peer-{i}", "cid": f"c-{i}"}) + "\n"
            for i in range(10)
        ))
        out = tmp_path / "trace.ndjson"
        code = main([
            "trace", "import-requests", str(log), str(out),
            "--nodes", "60", "--bits", "10", "--overlay-seed", "5",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "10 requests / 10 chunks imported" in printed
        header = json.loads(out.read_text().splitlines()[0])
        assert header["bits"] == 10
        assert header["n_nodes"] == 60
        assert header["overlay_seed"] == 5
