"""Tests for the workload stream adapters (micro-batch sources)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import UniformFileSize
from repro.workloads.generators import DownloadWorkload
from repro.workloads.streams import (
    GeneratorStream,
    RequestStream,
    TraceStream,
    WorkloadStream,
    parse_request_line,
)
from repro.workloads.traces import WorkloadTrace

SPACE = AddressSpace(10)
NODES = np.arange(40, dtype=np.uint64)


def make_workload(n_files=20):
    return DownloadWorkload(
        n_files=n_files, file_size=UniformFileSize(3, 9), seed=2,
    )


def flatten(stream, nodes=NODES, space=SPACE):
    return [event for batch in stream.batches(nodes, space)
            for event in batch]


def assert_same_events(streamed, materialized):
    assert len(streamed) == len(materialized)
    for got, want in zip(streamed, materialized):
        assert got.file_id == want.file_id
        assert got.originator == want.originator
        np.testing.assert_array_equal(
            got.chunk_addresses, want.chunk_addresses
        )


class TestGeneratorStream:
    @pytest.mark.parametrize("max_batch", [1, 7, 1000])
    def test_rng_exact_vs_materialize(self, max_batch):
        """Chunking the event iterator must not perturb the RNG."""
        materialized = make_workload().materialize(NODES, SPACE)
        stream = GeneratorStream(make_workload(), max_batch=max_batch)
        assert_same_events(flatten(stream), materialized)

    def test_batches_are_bounded(self):
        stream = GeneratorStream(make_workload(), max_batch=7)
        sizes = [len(b) for b in stream.batches(NODES, SPACE)]
        assert all(size <= 7 for size in sizes)
        assert sum(sizes) == 20

    def test_satisfies_protocol(self):
        assert isinstance(
            GeneratorStream(make_workload()), WorkloadStream
        )

    def test_rejects_bad_max_batch(self):
        with pytest.raises(WorkloadError, match="max_batch"):
            GeneratorStream(make_workload(), max_batch=0)


class TestTraceStream:
    def make_trace_file(self, tmp_path, *, ndjson=True):
        events = make_workload().materialize(NODES, SPACE)
        trace = WorkloadTrace(
            events, bits=SPACE.bits, n_nodes=len(NODES), overlay_seed=9
        )
        path = tmp_path / "trace.ndjson"
        if ndjson:
            trace.save_ndjson(path)
        else:
            trace.save(path)
        return path, events

    @pytest.mark.parametrize("ndjson", [True, False])
    def test_replays_trace_exactly(self, tmp_path, ndjson):
        path, events = self.make_trace_file(tmp_path, ndjson=ndjson)
        stream = TraceStream(path, max_batch=6)
        assert_same_events(flatten(stream), events)

    def test_bits_mismatch_rejected(self, tmp_path):
        path, _ = self.make_trace_file(tmp_path)
        stream = TraceStream(path)
        with pytest.raises(WorkloadError, match="bit space"):
            flatten(stream, space=AddressSpace(12))

    def test_population_size_mismatch_rejected(self, tmp_path):
        path, _ = self.make_trace_file(tmp_path)
        stream = TraceStream(path)
        with pytest.raises(WorkloadError, match="nodes"):
            flatten(stream, nodes=np.arange(80, dtype=np.uint64))

    def test_foreign_originator_rejected(self, tmp_path):
        path, _ = self.make_trace_file(tmp_path)
        stream = TraceStream(path)
        with pytest.raises(WorkloadError, match="originator"):
            flatten(stream, nodes=np.arange(100, 140, dtype=np.uint64))


class TestParseRequestLine:
    def test_chunks_list(self):
        event = parse_request_line(
            '{"originator": 5, "chunks": [1, 2, 3]}'
        )
        assert event.originator == 5
        assert event.file_id == 0
        np.testing.assert_array_equal(event.chunk_addresses, [1, 2, 3])

    def test_scalar_chunk_and_file_id(self):
        event = parse_request_line(
            '{"originator": 5, "chunk": 9, "file_id": 4}'
        )
        assert event.file_id == 4
        np.testing.assert_array_equal(event.chunk_addresses, [9])

    def test_bad_json_names_the_line(self):
        with pytest.raises(WorkloadError, match=r"line 12"):
            parse_request_line("{nope", lineno=12)

    def test_non_object_rejected(self):
        with pytest.raises(WorkloadError, match="object"):
            parse_request_line("[1, 2]")

    def test_missing_fields_rejected(self):
        with pytest.raises(WorkloadError, match="originator"):
            parse_request_line('{"chunks": [1]}')
        with pytest.raises(WorkloadError, match="bad request"):
            parse_request_line('{"originator": 5}')


class TestRequestStream:
    def lines_for(self, events):
        return [
            json.dumps({
                "originator": int(event.originator),
                "chunks": [int(c) for c in event.chunk_addresses],
            }) + "\n"
            for event in events
        ]

    def test_parses_wire_format_exactly(self):
        events = make_workload().materialize(NODES, SPACE)
        stream = RequestStream(self.lines_for(events), max_batch=5)
        streamed = flatten(stream)
        assert len(streamed) == len(events)
        for lineno, (got, want) in enumerate(zip(streamed, events)):
            assert got.file_id == lineno  # assigned from line order
            assert got.originator == want.originator
            np.testing.assert_array_equal(
                got.chunk_addresses, want.chunk_addresses
            )

    def test_blank_lines_skipped_but_numbering_kept(self):
        lines = ['{"originator": 3, "chunks": [1]}\n', "\n",
                 '{"originator": 4, "chunks": [2]}\n']
        streamed = flatten(RequestStream(lines))
        assert [e.file_id for e in streamed] == [0, 2]

    def test_foreign_originator_names_the_line(self):
        lines = ['{"originator": 3, "chunks": [1]}\n',
                 '{"originator": 9999, "chunks": [2]}\n']
        with pytest.raises(WorkloadError, match=r"line 2"):
            flatten(RequestStream(lines))

    def test_out_of_space_chunk_names_the_line(self):
        # 5000 fits the chunk dtype but not the 10-bit (1024) space.
        lines = ['{"originator": 3, "chunks": [5000]}\n']
        with pytest.raises(WorkloadError, match="space"):
            flatten(RequestStream(lines))

    def test_rejects_bad_max_batch(self):
        with pytest.raises(WorkloadError, match="max_batch"):
            RequestStream([], max_batch=-1)
