"""Unit tests for workload generation (repro.workloads.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import OriginatorPool, UniformFileSize
from repro.workloads.generators import (
    DownloadWorkload,
    FileDownload,
    paper_workload,
)


@pytest.fixture()
def space() -> AddressSpace:
    return AddressSpace(12)


@pytest.fixture()
def nodes() -> np.ndarray:
    return np.arange(100, dtype=np.uint64)


class TestFileDownload:
    def test_requires_chunks(self):
        with pytest.raises(WorkloadError):
            FileDownload(file_id=0, originator=1,
                         chunk_addresses=np.array([]))

    def test_n_chunks(self):
        event = FileDownload(file_id=0, originator=1,
                             chunk_addresses=np.array([1, 2]))
        assert event.n_chunks == 2


class TestDownloadWorkload:
    def test_event_count(self, nodes, space):
        workload = DownloadWorkload(n_files=25,
                                    file_size=UniformFileSize(2, 5))
        events = workload.materialize(nodes, space)
        assert len(events) == 25
        assert [event.file_id for event in events] == list(range(25))

    def test_reproducible(self, nodes, space):
        workload = DownloadWorkload(n_files=10, seed=3,
                                    file_size=UniformFileSize(2, 5))
        a = workload.materialize(nodes, space)
        b = workload.materialize(nodes, space)
        for ea, eb in zip(a, b):
            assert ea.originator == eb.originator
            assert np.array_equal(ea.chunk_addresses, eb.chunk_addresses)

    def test_chunk_addresses_in_space(self, nodes, space):
        workload = DownloadWorkload(n_files=10,
                                    file_size=UniformFileSize(50, 60))
        for event in workload.events(nodes, space):
            assert event.chunk_addresses.max() < space.size

    def test_originators_from_restricted_pool(self, nodes, space):
        workload = DownloadWorkload(
            n_files=200, originators=OriginatorPool(share=0.2),
            file_size=UniformFileSize(1, 2),
        )
        originators = {
            event.originator for event in workload.events(nodes, space)
        }
        assert len(originators) <= 20

    def test_catalog_repeats_files(self, nodes, space):
        workload = DownloadWorkload(
            n_files=50, catalog_size=3, file_size=UniformFileSize(4, 6),
        )
        signatures = {
            tuple(event.chunk_addresses.tolist())
            for event in workload.events(nodes, space)
        }
        assert len(signatures) <= 3

    def test_total_chunks(self, nodes, space):
        workload = DownloadWorkload(n_files=5,
                                    file_size=UniformFileSize(3, 3))
        assert workload.total_chunks(nodes, space) == 15

    def test_bad_n_files_rejected(self):
        with pytest.raises(WorkloadError):
            DownloadWorkload(n_files=0)


class TestPaperWorkload:
    def test_matches_paper_settings(self):
        workload = paper_workload(n_files=100, originator_share=0.2)
        assert workload.n_files == 100
        assert workload.originators.share == 0.2
        assert workload.file_size.low == 100
        assert workload.file_size.high == 1000
