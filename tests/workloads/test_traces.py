"""Unit tests for workload traces (repro.workloads.traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kademlia.address import AddressSpace
from repro.workloads.generators import DownloadWorkload
from repro.workloads.distributions import UniformFileSize
from repro.workloads.traces import WorkloadTrace


def make_trace() -> WorkloadTrace:
    workload = DownloadWorkload(n_files=12, seed=4,
                                file_size=UniformFileSize(2, 6))
    events = workload.materialize(
        np.arange(50, dtype=np.uint64), AddressSpace(10)
    )
    return WorkloadTrace(events)


class TestWorkloadTrace:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace([])

    def test_len_iter_getitem(self):
        trace = make_trace()
        assert len(trace) == 12
        assert trace[0].file_id == 0
        assert sum(1 for _ in trace) == 12

    def test_summary(self):
        trace = make_trace()
        summary = trace.summary()
        assert summary.n_files == 12
        assert 2 <= summary.min_file_chunks <= summary.max_file_chunks <= 6
        assert summary.total_chunks == sum(
            event.n_chunks for event in trace
        )
        assert "12 files" in str(summary)

    def test_originator_counts(self):
        trace = make_trace()
        counts = trace.originator_counts()
        assert sum(counts.values()) == 12

    def test_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original.file_id == restored.file_id
            assert original.originator == restored.originator
            assert np.array_equal(
                original.chunk_addresses, restored.chunk_addresses
            )
