"""Unit tests for workload traces (repro.workloads.traces)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kademlia.address import AddressSpace
from repro.workloads.generators import DownloadWorkload
from repro.workloads.distributions import UniformFileSize
from repro.workloads.traces import TRACE_FORMAT, WorkloadTrace


def make_trace(**provenance) -> WorkloadTrace:
    workload = DownloadWorkload(n_files=12, seed=4,
                                file_size=UniformFileSize(2, 6))
    events = workload.materialize(
        np.arange(50, dtype=np.uint64), AddressSpace(10)
    )
    return WorkloadTrace(events, **provenance)


class TestWorkloadTrace:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace([])

    def test_len_iter_getitem(self):
        trace = make_trace()
        assert len(trace) == 12
        assert trace[0].file_id == 0
        assert sum(1 for _ in trace) == 12

    def test_summary(self):
        trace = make_trace()
        summary = trace.summary()
        assert summary.n_files == 12
        assert 2 <= summary.min_file_chunks <= summary.max_file_chunks <= 6
        assert summary.total_chunks == sum(
            event.n_chunks for event in trace
        )
        assert "12 files" in str(summary)

    def test_originator_counts(self):
        trace = make_trace()
        counts = trace.originator_counts()
        assert sum(counts.values()) == 12

    def test_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original.file_id == restored.file_id
            assert original.originator == restored.originator
            assert np.array_equal(
                original.chunk_addresses, restored.chunk_addresses
            )


class TestTraceProvenance:
    def test_header_round_trips(self, tmp_path):
        trace = make_trace(bits=10, n_nodes=50, overlay_seed=42)
        path = tmp_path / "trace.json"
        trace.save(path)
        document = json.loads(path.read_text())
        assert document["format"] == TRACE_FORMAT
        loaded = WorkloadTrace.load(path)
        assert (loaded.bits, loaded.n_nodes, loaded.overlay_seed) == (
            10, 50, 42
        )

    def test_provenance_free_trace_round_trips_none(self, tmp_path):
        path = tmp_path / "trace.json"
        make_trace().save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.bits is loaded.n_nodes is loaded.overlay_seed is None

    def test_legacy_bare_list_still_loads(self, tmp_path):
        # The pre-header format: a bare JSON array of events.
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([
            {"file_id": 0, "originator": 3, "chunks": [1, 2, 900]},
            {"file_id": 1, "originator": 7, "chunks": [4]},
        ]))
        loaded = WorkloadTrace.load(path)
        assert len(loaded) == 2
        assert loaded.bits is None
        # Legacy decoding keeps the historical uint64.
        assert loaded[0].chunk_addresses.dtype == np.uint64

    def test_header_decodes_to_compact_dtype(self, tmp_path):
        path = tmp_path / "trace.json"
        make_trace(bits=10, n_nodes=50, overlay_seed=42).save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded[0].chunk_addresses.dtype == np.uint16
        wide = tmp_path / "wide.json"
        make_trace(bits=20, n_nodes=50, overlay_seed=42).save(wide)
        assert WorkloadTrace.load(wide)[0].chunk_addresses.dtype == np.uint32

    def test_unknown_format_tag_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"format": "repro-swarm-trace/99", "events": []}
        ))
        with pytest.raises(WorkloadError, match="format tag"):
            WorkloadTrace.load(path)

    def test_headerless_dict_rejected(self, tmp_path):
        path = tmp_path / "noheader.json"
        path.write_text(json.dumps({"events": []}))
        with pytest.raises(WorkloadError, match="format tag"):
            WorkloadTrace.load(path)

    def test_dynamics_trace_file_rejected(self, tmp_path):
        # The sibling dynamics format must fail with a pointer, not
        # decode as zero requests.
        path = tmp_path / "dynamics.json"
        path.write_text(json.dumps(
            {"format": "repro-swarm-dynamics/1", "streams": []}
        ))
        with pytest.raises(WorkloadError, match="dynamics trace"):
            WorkloadTrace.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trace.json"
        make_trace(bits=10, n_nodes=50, overlay_seed=42).save(path)
        path.write_text(path.read_text()[:-30])
        with pytest.raises(WorkloadError, match="truncated or corrupt"):
            WorkloadTrace.load(path)

    def test_malformed_event_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": TRACE_FORMAT, "bits": 10, "n_nodes": 50,
            "overlay_seed": 42,
            "events": [{"file_id": 0, "chunks": [1]}],
        }))
        with pytest.raises(WorkloadError, match="malformed event"):
            WorkloadTrace.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            WorkloadTrace.load(tmp_path / "gone.json")

    @pytest.mark.parametrize("bits", [0, -3, 65, "12"])
    def test_out_of_range_bits_rejected(self, tmp_path, bits):
        path = tmp_path / "badbits.json"
        path.write_text(json.dumps({
            "format": TRACE_FORMAT, "bits": bits, "n_nodes": 50,
            "overlay_seed": 42,
            "events": [{"file_id": 0, "originator": 1, "chunks": [2]}],
        }))
        with pytest.raises(WorkloadError, match="cannot read"):
            WorkloadTrace.load(path)

    def test_empty_chunk_event_rejected_at_load(self, tmp_path):
        # FileDownload enforces >= 1 chunk at construction, which is
        # why TraceWorkload.events needs no empty-event guard: a trace
        # with an empty file cannot even be loaded.
        path = tmp_path / "empty-file.json"
        path.write_text(json.dumps([
            {"file_id": 0, "originator": 3, "chunks": []},
        ]))
        with pytest.raises(WorkloadError, match="at least one chunk"):
            WorkloadTrace.load(path)
