"""Tests for trace replay (TraceWorkload) and the trace CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import UniformFileSize
from repro.workloads.generators import DownloadWorkload
from repro.workloads.traces import TraceWorkload, WorkloadTrace


def make_trace(nodes, space, n_files=10):
    workload = DownloadWorkload(
        n_files=n_files, file_size=UniformFileSize(3, 9), seed=2,
    )
    return WorkloadTrace(workload.materialize(nodes, space))


class TestTraceWorkload:
    def test_replay_yields_identical_events(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        replayed = TraceWorkload(trace).materialize(nodes, space)
        for original, replay in zip(trace, replayed):
            assert original.originator == replay.originator
            assert np.array_equal(
                original.chunk_addresses, replay.chunk_addresses
            )

    def test_foreign_originator_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        other_population = np.arange(100, 140, dtype=np.uint64)
        with pytest.raises(WorkloadError, match="originator"):
            TraceWorkload(trace).materialize(other_population, space)

    def test_oversized_chunk_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        small_space = AddressSpace(4)
        with pytest.raises(WorkloadError, match="space"):
            TraceWorkload(trace).materialize(nodes, small_space)

    def test_replay_through_fast_simulation_is_deterministic(self):
        config = FastSimulationConfig(
            n_nodes=80, bits=11, bucket_size=4, n_files=10,
            overlay_seed=5,
        )
        simulation = FastSimulation(config)
        trace = make_trace(
            simulation.overlay.address_array(), simulation.space
        )
        a = simulation.run(TraceWorkload(trace))
        b = simulation.run(TraceWorkload(trace))
        assert np.array_equal(a.forwarded, b.forwarded)
        assert a.files == 10

    def test_header_bits_mismatch_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        tagged = WorkloadTrace(
            trace.events, bits=10, n_nodes=40, overlay_seed=1
        )
        with pytest.raises(WorkloadError, match="10-bit space"):
            TraceWorkload(tagged).materialize(nodes, AddressSpace(12))

    def test_header_population_mismatch_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        tagged = WorkloadTrace(
            trace.events, bits=10, n_nodes=40, overlay_seed=1
        )
        with pytest.raises(WorkloadError, match="40 nodes"):
            TraceWorkload(tagged).materialize(
                np.arange(50, dtype=np.uint64), space
            )

    def test_saved_trace_replays_bit_identical_through_fast(self,
                                                            tmp_path):
        """The compact-dtype fix: a save/load round trip through the
        versioned format must not perturb the fast backend at all."""
        config = FastSimulationConfig(
            n_nodes=80, bits=11, bucket_size=4, n_files=10,
            overlay_seed=5, workload_seed=3, file_min=3, file_max=9,
        )
        simulation = FastSimulation(config)
        original = simulation.run()  # the generated workload, batched
        events = config.workload().materialize(
            simulation.overlay.address_array(), simulation.space
        )
        path = tmp_path / "trace.json"
        WorkloadTrace(
            events, bits=config.bits, n_nodes=config.n_nodes,
            overlay_seed=config.overlay_seed,
        ).save(path)
        loaded = WorkloadTrace.load(path)
        # Addresses decode straight into the kernel's compact dtype.
        assert loaded[0].chunk_addresses.dtype == np.uint16
        replayed = simulation.run(TraceWorkload(loaded))
        assert np.array_equal(original.forwarded, replayed.forwarded)
        assert np.array_equal(original.first_hop, replayed.first_hop)
        assert np.array_equal(original.income, replayed.income)
        assert np.array_equal(
            original.expenditure, replayed.expenditure
        )
        assert original.hop_histogram == replayed.hop_histogram


class TestTraceCli:
    def test_generate_and_replay_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "100", "--bits", "12",
        ])
        assert code == 0
        assert trace_path.exists()
        assert "trace written" in capsys.readouterr().out

        code = main([
            "trace", "replay", str(trace_path),
            "--nodes", "100", "--bits", "12", "--bucket-size", "4",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "F2 Gini" in output

    def test_replay_against_wrong_overlay_fails(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "100", "--bits", "12",
        ])
        capsys.readouterr()
        with pytest.raises(WorkloadError, match="overlay seed"):
            main([
                "trace", "replay", str(trace_path),
                "--nodes", "100", "--bits", "12",
                "--overlay-seed", "999",
            ])

    def test_replay_defaults_come_from_the_header(self, tmp_path, capsys):
        # No --nodes/--bits/--overlay-seed needed on replay: the
        # header knows what the trace was generated for.
        trace_path = tmp_path / "trace.json"
        main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "90", "--bits", "12",
            "--overlay-seed", "3",
        ])
        capsys.readouterr()
        assert main(["trace", "replay", str(trace_path)]) == 0
        assert "replayed" in capsys.readouterr().out


class TestDynamicsCli:
    def test_record_and_replay_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "dynamics.json"
        code = main([
            "trace", "record-dynamics", str(path),
            "--scenario", "churn:rate=0.1,recompute=true+caching:size=64",
            "--files", "30", "--nodes", "120", "--bits", "12",
            "--batch-files", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamics trace written" in out
        assert "4 epoch(s)" in out

        code = main([
            "trace", "replay-dynamics", str(path),
            "--files", "30", "--batch-files", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying dynamics" in out
        assert "F2 Gini" in out

    def test_replay_dynamics_composes_extra_scenario(self, tmp_path,
                                                     capsys):
        path = tmp_path / "dynamics.json"
        main([
            "trace", "record-dynamics", str(path),
            "--scenario", "churn:rate=0.2",
            "--files", "30", "--nodes", "120", "--bits", "12",
            "--batch-files", "8",
        ])
        capsys.readouterr()
        code = main([
            "trace", "replay-dynamics", str(path),
            "--files", "30", "--batch-files", "8",
            "--compose", "freeriding:fraction=0.3",
        ])
        assert code == 0
        assert "replaying dynamics" in capsys.readouterr().out

    def test_record_rejects_bad_scenario(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown scenario"):
            main([
                "trace", "record-dynamics",
                str(tmp_path / "dynamics.json"),
                "--scenario", "warp:factor=9",
            ])

    def test_request_and_dynamics_formats_do_not_mix(self, tmp_path,
                                                     capsys):
        trace_path = tmp_path / "requests.json"
        main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "100", "--bits", "12",
        ])
        capsys.readouterr()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="format tag"):
            main(["trace", "replay-dynamics", str(trace_path)])
