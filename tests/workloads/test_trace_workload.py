"""Tests for trace replay (TraceWorkload) and the trace CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import UniformFileSize
from repro.workloads.generators import DownloadWorkload
from repro.workloads.traces import TraceWorkload, WorkloadTrace


def make_trace(nodes, space, n_files=10):
    workload = DownloadWorkload(
        n_files=n_files, file_size=UniformFileSize(3, 9), seed=2,
    )
    return WorkloadTrace(workload.materialize(nodes, space))


class TestTraceWorkload:
    def test_replay_yields_identical_events(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        replayed = TraceWorkload(trace).materialize(nodes, space)
        for original, replay in zip(trace, replayed):
            assert original.originator == replay.originator
            assert np.array_equal(
                original.chunk_addresses, replay.chunk_addresses
            )

    def test_foreign_originator_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        other_population = np.arange(100, 140, dtype=np.uint64)
        with pytest.raises(WorkloadError, match="originator"):
            TraceWorkload(trace).materialize(other_population, space)

    def test_oversized_chunk_rejected(self):
        space = AddressSpace(10)
        nodes = np.arange(40, dtype=np.uint64)
        trace = make_trace(nodes, space)
        small_space = AddressSpace(4)
        with pytest.raises(WorkloadError, match="space"):
            TraceWorkload(trace).materialize(nodes, small_space)

    def test_replay_through_fast_simulation_is_deterministic(self):
        config = FastSimulationConfig(
            n_nodes=80, bits=11, bucket_size=4, n_files=10,
            overlay_seed=5,
        )
        simulation = FastSimulation(config)
        trace = make_trace(
            simulation.overlay.address_array(), simulation.space
        )
        a = simulation.run(TraceWorkload(trace))
        b = simulation.run(TraceWorkload(trace))
        assert np.array_equal(a.forwarded, b.forwarded)
        assert a.files == 10


class TestTraceCli:
    def test_generate_and_replay_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "100", "--bits", "12",
        ])
        assert code == 0
        assert trace_path.exists()
        assert "trace written" in capsys.readouterr().out

        code = main([
            "trace", "replay", str(trace_path),
            "--nodes", "100", "--bits", "12", "--bucket-size", "4",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "F2 Gini" in output

    def test_replay_against_wrong_overlay_fails(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main([
            "trace", "generate", str(trace_path),
            "--files", "5", "--nodes", "100", "--bits", "12",
        ])
        capsys.readouterr()
        with pytest.raises(WorkloadError):
            main([
                "trace", "replay", str(trace_path),
                "--nodes", "100", "--bits", "12",
                "--overlay-seed", "999",
            ])
