"""Unit tests for the discrete-event scheduler (repro.engine.des)."""

from __future__ import annotations

import pytest

from repro.engine.des import EventScheduler
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired: list[str] = []
        scheduler.schedule_at(5.0, lambda s, t: fired.append("late"))
        scheduler.schedule_at(1.0, lambda s, t: fired.append("early"))
        scheduler.run_all()
        assert fired == ["early", "late"]
        assert scheduler.now == 5.0

    def test_fifo_among_equal_times(self):
        scheduler = EventScheduler()
        fired: list[int] = []
        for i in range(5):
            scheduler.schedule_at(1.0, lambda s, t, i=i: fired.append(i))
        scheduler.run_all()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_uses_now(self):
        scheduler = EventScheduler()
        times: list[float] = []
        def chain(s, t):
            times.append(t)
            if len(times) < 3:
                s.schedule_in(2.0, chain)
        scheduler.schedule_in(1.0, chain)
        scheduler.run_all()
        assert times == [1.0, 3.0, 5.0]

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(5.0, lambda s, t: None)
        scheduler.run_all()
        with pytest.raises(SimulationError, match="before now"):
            scheduler.schedule_at(1.0, lambda s, t: None)

    def test_step_returns_event(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda s, t: None, name="tick")
        event = scheduler.step()
        assert event is not None and event.name == "tick"
        assert scheduler.step() is None


class TestRunUntil:
    def test_fires_only_up_to_horizon(self):
        scheduler = EventScheduler()
        fired: list[float] = []
        for time in (1.0, 2.0, 3.0):
            scheduler.schedule_at(time, lambda s, t: fired.append(t))
        count = scheduler.run_until(2.0)
        assert count == 2
        assert fired == [1.0, 2.0]
        assert scheduler.now == 2.0
        assert len(scheduler) == 1

    def test_horizon_before_now_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0)

    def test_max_events_guard(self):
        scheduler = EventScheduler()
        def respawn(s, t):
            s.schedule_in(0.1, respawn)
        scheduler.schedule_in(0.0, respawn)
        with pytest.raises(SimulationError, match="runaway"):
            scheduler.run_until(1e9, max_events=100)

    def test_max_events_fires_exactly_that_many(self):
        # Regression: the guard used to fire max_events + 1 events
        # before raising.
        scheduler = EventScheduler()
        fired: list[float] = []
        def respawn(s, t):
            fired.append(t)
            s.schedule_in(0.1, respawn)
        scheduler.schedule_in(0.0, respawn)
        with pytest.raises(SimulationError):
            scheduler.run_until(1e9, max_events=100)
        assert len(fired) == 100
        assert scheduler.events_fired == 100

    def test_run_all_max_events_fires_exactly_that_many(self):
        scheduler = EventScheduler()
        fired: list[float] = []
        def respawn(s, t):
            fired.append(t)
            s.schedule_in(0.1, respawn)
        scheduler.schedule_in(0.0, respawn)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=50)
        assert len(fired) == 50

    def test_max_events_not_tripped_when_queue_drains_at_bound(self):
        scheduler = EventScheduler()
        for i in range(10):
            scheduler.schedule_at(float(i), lambda s, t: None)
        assert scheduler.run_until(100.0, max_events=10) == 10


class TestPeriodic:
    def test_fires_every_interval(self):
        scheduler = EventScheduler()
        ticks: list[float] = []
        scheduler.schedule_periodic(1.0, lambda s, t: ticks.append(t))
        scheduler.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_cancel_stops_future_firings(self):
        scheduler = EventScheduler()
        ticks: list[float] = []
        handle = scheduler.schedule_periodic(
            1.0, lambda s, t: ticks.append(t)
        )
        scheduler.run_until(2.5)
        handle.cancel()
        scheduler.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_start_in_override(self):
        scheduler = EventScheduler()
        ticks: list[float] = []
        scheduler.schedule_periodic(
            2.0, lambda s, t: ticks.append(t), start_in=0.5
        )
        scheduler.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_self_cancel_inside_handler(self):
        scheduler = EventScheduler()
        ticks: list[float] = []
        def tick(s, t):
            ticks.append(t)
            if len(ticks) == 2:
                handle.cancel()
        handle = scheduler.schedule_periodic(1.0, tick)
        scheduler.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_no_accumulated_drift(self):
        # Regression: rescheduling via now + interval accumulated one
        # float rounding error per tick; tick k must fire at the exact
        # float k * interval. 0.1 is the classic non-representable
        # interval: summing it 1000 times gives 99.9999999999986.
        scheduler = EventScheduler()
        ticks: list[float] = []
        scheduler.schedule_periodic(0.1, lambda s, t: ticks.append(t))
        scheduler.run_until(100.0, max_events=2000)
        assert len(ticks) == 1000
        assert ticks[999] == 100.0
        assert all(ticks[k] == (k + 1) * 0.1 for k in range(1000))

    def test_no_drift_with_start_in(self):
        scheduler = EventScheduler()
        ticks: list[float] = []
        scheduler.schedule_periodic(
            0.1, lambda s, t: ticks.append(t), start_in=0.25
        )
        scheduler.run_until(50.0, max_events=1000)
        assert ticks[0] == 0.25
        assert all(
            ticks[k] == 0.25 + k * 0.1 for k in range(len(ticks))
        )

    def test_drift_free_from_nonzero_base(self):
        # Periodic schedules anchored mid-simulation multiply from
        # their base time instead of accumulating from it.
        scheduler = EventScheduler()
        scheduler.run_until(7.0)
        ticks: list[float] = []
        scheduler.schedule_periodic(0.1, lambda s, t: ticks.append(t))
        scheduler.run_until(107.0, max_events=2000)
        assert ticks[999] == 7.0 + 100.0
