"""Unit tests for models and blocks (repro.engine.state)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.state import Block, Model, StepContext
from repro.errors import SimulationError


def make_context(state=None, params=None):
    return StepContext(
        params=params or {},
        run=0, timestep=1, substep=1,
        state=state or {"x": 0},
        rng=np.random.default_rng(0),
    )


class TestStepContext:
    def test_param_lookup(self):
        context = make_context(params={"k": 4})
        assert context.param("k") == 4

    def test_missing_param_raises_with_available(self):
        context = make_context(params={"k": 4})
        with pytest.raises(SimulationError, match="'k'"):
            context.param("missing")


class TestBlock:
    def test_requires_name_and_updates(self):
        with pytest.raises(SimulationError):
            Block(name="", updates={"x": lambda c, s: 1})
        with pytest.raises(SimulationError):
            Block(name="b", updates={})

    def test_signals_merged(self):
        block = Block(
            name="b",
            policies=(lambda c: {"a": 1}, lambda c: {"b": 2}),
            updates={"x": lambda c, s: s["a"] + s["b"]},
        )
        assert block.signals(make_context()) == {"a": 1, "b": 2}

    def test_conflicting_signals_raise(self):
        block = Block(
            name="b",
            policies=(lambda c: {"a": 1}, lambda c: {"a": 2}),
            updates={"x": lambda c, s: 0},
        )
        with pytest.raises(SimulationError, match="two policies"):
            block.signals(make_context())


class TestModel:
    def test_requires_state_and_blocks(self):
        block = Block(name="b", updates={"x": lambda c, s: 1})
        with pytest.raises(SimulationError):
            Model(initial_state={}, blocks=(block,))
        with pytest.raises(SimulationError):
            Model(initial_state={"x": 0}, blocks=())

    def test_unknown_updated_variable_rejected(self):
        block = Block(name="b", updates={"y": lambda c, s: 1})
        with pytest.raises(SimulationError, match="undeclared"):
            Model(initial_state={"x": 0}, blocks=(block,))

    def test_with_params_overrides(self):
        block = Block(name="b", updates={"x": lambda c, s: 1})
        model = Model(
            initial_state={"x": 0}, blocks=(block,), params={"k": 4, "j": 1}
        )
        updated = model.with_params(k=20)
        assert updated.params == {"k": 20, "j": 1}
        assert model.params["k"] == 4  # original untouched
