"""Unit tests for result sets (repro.engine.results)."""

from __future__ import annotations

import pytest

from repro.engine.results import Record, ResultSet
from repro.errors import SimulationError


def build_results() -> ResultSet:
    results = ResultSet(metadata={"seed": 1})
    for run in (0, 1):
        results.append(Record(run=run, timestep=0, substep=0,
                              state={"x": 0}))
        for t in (1, 2):
            results.append(Record(run=run, timestep=t, substep=1,
                                  state={"x": t}))
            results.append(Record(run=run, timestep=t, substep=2,
                                  state={"x": t * 10}))
    return results


class TestQueries:
    def test_runs(self):
        assert build_results().runs() == [0, 1]

    def test_for_run_filters(self):
        subset = build_results().for_run(1)
        assert all(record.run == 1 for record in subset)
        assert len(subset) == 5

    def test_at_substep_end_keeps_last(self):
        ends = build_results().at_substep_end()
        values = [record.value("x") for record in ends.for_run(0)]
        assert values == [0, 10, 20]

    def test_series(self):
        assert build_results().series("x", run=0) == [0, 10, 20]

    def test_series_missing_key_raises(self):
        with pytest.raises(SimulationError, match="available"):
            build_results().series("y", run=0)

    def test_final_state(self):
        assert build_results().final_state(0)["x"] == 20

    def test_final_state_missing_run_raises(self):
        with pytest.raises(SimulationError):
            build_results().final_state(9)

    def test_map_final(self):
        values = build_results().map_final(lambda state: state["x"])
        assert values == [20, 20]


class TestMerge:
    def test_disjoint_runs_merge(self):
        a = ResultSet(metadata={"seed": 1})
        a.append(Record(run=0, timestep=1, substep=1, state={"x": 1}))
        b = ResultSet(metadata={"machine": "two"})
        b.append(Record(run=1, timestep=1, substep=1, state={"x": 2}))
        merged = a.merge(b)
        assert merged.runs() == [0, 1]
        assert merged.metadata == {"seed": 1, "machine": "two"}

    def test_overlapping_runs_rejected(self):
        a = ResultSet()
        a.append(Record(run=0, timestep=1, substep=1, state={}))
        b = ResultSet()
        b.append(Record(run=0, timestep=2, substep=1, state={}))
        with pytest.raises(SimulationError, match="overlapping"):
            a.merge(b)

    def test_conflicting_metadata_rejected(self):
        a = ResultSet(metadata={"seed": 1})
        a.append(Record(run=0, timestep=1, substep=1, state={}))
        b = ResultSet(metadata={"seed": 2})
        b.append(Record(run=1, timestep=1, substep=1, state={}))
        with pytest.raises(SimulationError, match="conflict"):
            a.merge(b)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        results = build_results()
        path = tmp_path / "results.json"
        results.save(path)
        loaded = ResultSet.load(path)
        assert len(loaded) == len(results)
        assert loaded.metadata == results.metadata
        assert loaded.series("x", run=0) == results.series("x", run=0)
