"""Unit tests for the simulation executor (repro.engine.simulation)."""

from __future__ import annotations

import pytest

from repro.engine.simulation import SimulationConfig, Simulator
from repro.engine.state import Block, Model
from repro.errors import SimulationError


def counter_model(step: int = 1) -> Model:
    """x increases by a policy-provided step each timestep."""
    return Model(
        initial_state={"x": 0, "history_len": 0},
        blocks=(
            Block(
                name="count",
                policies=(lambda c: {"step": c.param("step")},),
                updates={
                    "x": lambda c, s: c.state["x"] + s["step"],
                },
            ),
            Block(
                name="observe",
                updates={
                    "history_len": lambda c, s: c.state["history_len"] + 1,
                },
            ),
        ),
        params={"step": step},
    )


class TestSimulationConfig:
    @pytest.mark.parametrize("kwargs", [
        {"timesteps": 0},
        {"timesteps": 5, "runs": 0},
        {"timesteps": 5, "first_run": -1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SimulationConfig(**kwargs)


class TestSimulator:
    def test_counter_advances(self):
        results = Simulator(counter_model()).run(
            SimulationConfig(timesteps=5)
        )
        assert results.series("x", run=0) == [0, 1, 2, 3, 4, 5]

    def test_blocks_run_in_order(self):
        results = Simulator(counter_model()).run(
            SimulationConfig(timesteps=3)
        )
        final = results.final_state(0)
        assert final["x"] == 3
        assert final["history_len"] == 3

    def test_params_respected(self):
        results = Simulator(counter_model(step=10)).run(
            SimulationConfig(timesteps=2)
        )
        assert results.final_state(0)["x"] == 20

    def test_deterministic_across_executions(self):
        model = Model(
            initial_state={"v": 0.0},
            blocks=(
                Block(
                    name="noise",
                    updates={
                        "v": lambda c, s: c.state["v"] + c.rng.random()
                    },
                ),
            ),
        )
        config = SimulationConfig(timesteps=10, runs=2, seed=5)
        a = Simulator(model).run(config)
        b = Simulator(model).run(config)
        assert a.series("v", run=0) == b.series("v", run=0)
        assert a.series("v", run=1) == b.series("v", run=1)

    def test_runs_have_independent_randomness(self):
        model = Model(
            initial_state={"v": 0.0},
            blocks=(
                Block(
                    name="noise",
                    updates={"v": lambda c, s: c.rng.random()},
                ),
            ),
        )
        results = Simulator(model).run(
            SimulationConfig(timesteps=1, runs=3, seed=5)
        )
        finals = {results.final_state(run)["v"] for run in range(3)}
        assert len(finals) == 3

    def test_first_run_offset(self):
        results = Simulator(counter_model()).run(
            SimulationConfig(timesteps=1, runs=2, first_run=10)
        )
        assert results.runs() == [10, 11]

    def test_record_substeps(self):
        config = SimulationConfig(timesteps=2, record_substeps=True)
        results = Simulator(counter_model()).run(config)
        # initial + 2 timesteps x 2 blocks
        assert len(results) == 5

    def test_metadata_captured(self):
        results = Simulator(counter_model()).run(
            SimulationConfig(timesteps=1, seed=77)
        )
        assert results.metadata["seed"] == 77
        assert "step" in results.metadata["params"]
