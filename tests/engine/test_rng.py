"""Unit tests for seed management (repro.engine.rng)."""

from __future__ import annotations

import pytest

from repro.engine.rng import derive_seed, run_seed, substream
from repro.errors import ConfigurationError


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "overlay") == derive_seed(42, "overlay")

    def test_name_sensitivity(self):
        assert derive_seed(42, "overlay") != derive_seed(42, "workload")

    def test_root_sensitivity(self):
        assert derive_seed(42, "overlay") != derive_seed(43, "overlay")

    def test_path_depth_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "a:b")
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_non_int_root_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seed("42", "x")


class TestSubstream:
    def test_streams_reproducible(self):
        a = substream(7, "traffic").random(5)
        b = substream(7, "traffic").random(5)
        assert (a == b).all()

    def test_streams_differ_by_name(self):
        a = substream(7, "traffic").random(5)
        b = substream(7, "pricing").random(5)
        assert not (a == b).all()


class TestRunSeed:
    def test_distinct_across_runs(self):
        seeds = {run_seed(1, run) for run in range(100)}
        assert len(seeds) == 100

    def test_deterministic(self):
        assert run_seed(1, 3) == run_seed(1, 3)
