"""Unit tests for parameter sweeps (repro.engine.experiment)."""

from __future__ import annotations

import pytest

from repro.engine.experiment import (
    ExperimentRunner,
    ParameterSweep,
    SweepPoint,
)
from repro.engine.simulation import SimulationConfig
from repro.engine.state import Block, Model
from repro.errors import ExperimentError


def step_model() -> Model:
    return Model(
        initial_state={"x": 0},
        blocks=(
            Block(
                name="count",
                updates={"x": lambda c, s: c.state["x"] + c.param("step")},
            ),
        ),
        params={"step": 1},
    )


class TestParameterSweep:
    def test_cross_product_size(self):
        sweep = ParameterSweep({"k": [4, 20], "share": [0.2, 1.0]})
        assert len(sweep) == 4
        labels = [point.label() for point in sweep]
        assert "k=4, share=0.2" in labels
        assert "k=20, share=1.0" in labels

    def test_indices_are_sequential(self):
        sweep = ParameterSweep({"k": [1, 2, 3]})
        assert [point.index for point in sweep] == [0, 1, 2]

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            ParameterSweep({})

    def test_empty_values_rejected(self):
        with pytest.raises(ExperimentError, match="no values"):
            ParameterSweep({"k": []})


class TestExperimentRunner:
    def test_sweep_applies_params(self):
        runner = ExperimentRunner(
            model=step_model(),
            config=SimulationConfig(timesteps=3),
        )
        results = runner.run_sweep(ParameterSweep({"step": [1, 5]}))
        finals = {
            index: result.final_state(0)["x"]
            for index, result in results.items()
        }
        assert finals == {0: 3, 1: 15}

    def test_results_labelled(self):
        runner = ExperimentRunner(
            model=step_model(), config=SimulationConfig(timesteps=1)
        )
        result = runner.run_point(SweepPoint(index=3, params={"step": 2}))
        assert result.metadata["sweep_index"] == 3
        assert result.metadata["sweep_label"] == "step=2"
        assert result.metadata["param:step"] == "2"
