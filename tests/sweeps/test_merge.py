"""Shard-store merging: :meth:`SweepStore.merge` and its CLI surface.

The oracle: shards that partition a sweep merge back to bytes
identical to a serial run's store. Everything else pins the merge
rules — spec equality enforced, point conflicts refused, failure
union with later-attempt-wins / success-supersedes, provenance
collapse — plus the ``sweep --merge-stores`` and ``sweep --dry-run``
CLI paths.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backends.config import FastSimulationConfig
from repro.cli import main
from repro.errors import StoreMergeError
from repro.sweeps import (
    SweepSpec,
    SweepStore,
    merge_provenance,
    run_sweep,
    sweep_status,
)

TINY = FastSimulationConfig(
    n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(base=TINY, grid={"bucket_size": (4, 8)},
                    backends=("fast",), seeds=2)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def shard_with(tmp_path, spec, name, records=(), failures=()):
    store = SweepStore.open(tmp_path / name, spec)
    for record in records:
        store.add(dict(record))
    for record in failures:
        store.add_failure(dict(record))
    store.save()
    return store


def failure_record(point, *, attempts, error="E: boom"):
    return {
        "point_id": point.point_id, "backend": point.backend,
        "overrides": dict(point.overrides), "replica": point.replica,
        "workload_seed": point.workload_seed, "kind": "exception",
        "error": error, "digest": "d" * 16, "attempts": attempts,
    }


class TestPartitionOracle:
    def test_partitioned_shards_merge_to_serial_bytes(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        result = run_sweep(spec, jobs=1, store_path=serial)
        assert result.failures == []

        full = SweepStore.load(serial)
        ids = sorted(full.points)
        for split in range(len(ids) + 1):
            shards = [
                shard_with(tmp_path, spec, f"a-{split}.json",
                           [{"point_id": i, **full.points[i]}
                            for i in ids[:split]]),
                shard_with(tmp_path, spec, f"b-{split}.json",
                           [{"point_id": i, **full.points[i]}
                            for i in ids[split:]]),
            ]
            merged = SweepStore.merge(
                shards, path=tmp_path / f"merged-{split}.json"
            )
            merged.save()
            assert merged.path.read_bytes() == serial.read_bytes(), (
                f"partition at {split} broke byte-identity"
            )

    def test_overlapping_identical_records_union_cleanly(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)
        full = SweepStore.load(serial)
        records = [{"point_id": i, **r} for i, r in full.points.items()]
        # Both shards saw the middle points (a re-leased overlap).
        shards = [
            shard_with(tmp_path, spec, "a.json", records[:3]),
            shard_with(tmp_path, spec, "b.json", records[1:]),
        ]
        merged = SweepStore.merge(shards, path=tmp_path / "merged.json")
        merged.save()
        assert merged.path.read_bytes() == serial.read_bytes()


class TestMergeRules:
    def test_empty_shard_list_refused(self):
        with pytest.raises(StoreMergeError, match="no shard"):
            SweepStore.merge([])

    def test_spec_mismatch_refused_by_name(self, tmp_path):
        a = shard_with(tmp_path, tiny_spec(), "a.json")
        b = shard_with(tmp_path, tiny_spec(seeds=3), "b.json")
        with pytest.raises(StoreMergeError, match="different spec"):
            SweepStore.merge([a, b])

    def test_conflicting_point_records_refused(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[0]
        record = {
            "point_id": point.point_id, "backend": point.backend,
            "overrides": dict(point.overrides),
            "replica": point.replica,
            "workload_seed": point.workload_seed,
            "metrics": {"chunks": 1},
        }
        altered = dict(record, metrics={"chunks": 2})
        a = shard_with(tmp_path, spec, "a.json", [record])
        b = shard_with(tmp_path, spec, "b.json", [altered])
        with pytest.raises(StoreMergeError, match="disagree on point"):
            SweepStore.merge([a, b])

    def test_failure_union_later_attempt_wins(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[0]
        a = shard_with(tmp_path, spec, "a.json",
                       failures=[failure_record(point, attempts=1)])
        b = shard_with(tmp_path, spec, "b.json",
                       failures=[failure_record(point, attempts=3)])
        merged = SweepStore.merge([a, b])
        assert merged.failures[point.point_id]["attempts"] == 3

    def test_success_supersedes_failure(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[0]
        success = {
            "point_id": point.point_id, "backend": point.backend,
            "overrides": dict(point.overrides),
            "replica": point.replica,
            "workload_seed": point.workload_seed,
            "metrics": {"chunks": 1},
        }
        a = shard_with(tmp_path, spec, "a.json",
                       failures=[failure_record(point, attempts=3)])
        b = shard_with(tmp_path, spec, "b.json", [success])
        for order in ([a, b], [b, a]):
            merged = SweepStore.merge(order)
            assert point.point_id in merged.points
            assert point.point_id not in merged.failures

    def test_equal_attempt_conflict_refused(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[0]
        a = shard_with(tmp_path, spec, "a.json",
                       failures=[failure_record(point, attempts=2)])
        b = shard_with(
            tmp_path, spec, "b.json",
            failures=[failure_record(point, attempts=2,
                                     error="E: different")],
        )
        with pytest.raises(StoreMergeError, match="conflicting failure"):
            SweepStore.merge([a, b])


class TestProvenance:
    def test_agreeing_provenance_collapses(self):
        shared = {"git_commit": "abc", "python": "3.12"}
        assert merge_provenance([dict(shared), dict(shared)]) == shared

    def test_disagreeing_provenance_keeps_common_and_shards(self):
        a = {"git_commit": "abc", "python": "3.12"}
        b = {"git_commit": "def", "python": "3.12"}
        merged = merge_provenance([a, b])
        assert merged["python"] == "3.12"
        assert "git_commit" not in merged
        assert sorted(
            shard["git_commit"] for shard in merged["shards"]
        ) == ["abc", "def"]

    def test_all_unknown_is_none(self):
        assert merge_provenance([None, None]) is None


class TestMergeCLI:
    def run_small(self, tmp_path) -> tuple[SweepSpec, Path]:
        spec = SweepSpec(
            base=FastSimulationConfig(n_nodes=60, n_files=8),
            grid={"bucket_size": (4, 8)}, backends=("fast",), seeds=1,
        )
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)
        return spec, serial

    def test_merge_stores_round_trip(self, tmp_path, capsys):
        spec, serial = self.run_small(tmp_path)
        full = SweepStore.load(serial)
        ids = sorted(full.points)
        shard_with(tmp_path, spec, "a.json",
                   [{"point_id": i, **full.points[i]} for i in ids[:1]])
        shard_with(tmp_path, spec, "b.json",
                   [{"point_id": i, **full.points[i]} for i in ids[1:]])
        code = main([
            "sweep", "--merge-stores", str(tmp_path / "a.json"),
            str(tmp_path / "b.json"),
            "--store", str(tmp_path / "merged.json"),
        ])
        assert code == 0
        assert "merged 2 shard(s)" in capsys.readouterr().out
        assert (tmp_path / "merged.json").read_bytes() \
            == serial.read_bytes()

    def test_merge_stores_requires_output_store(self, tmp_path):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="--store"):
            main(["sweep", "--merge-stores", str(tmp_path / "a.json")])


class TestDryRunCLI:
    SMALL = ["--grid", "bucket_size=4", "--seeds", "2",
             "--backend", "fast", "--nodes", "60", "--files", "8"]

    def test_dry_run_without_store_lists_all_pending(self, capsys):
        code = main(["sweep", *self.SMALL, "--dry-run"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 point(s) total" in output
        assert "2 pending" in output
        assert "pending: fast|bucket_size=4|r0" in output

    def test_dry_run_reflects_a_partial_store(self, tmp_path, capsys):
        store_path = tmp_path / "sweep.json"
        code = main(["sweep", *self.SMALL, "--store", str(store_path)])
        assert code == 0
        capsys.readouterr()
        code = main(["sweep", *self.SMALL, "--store", str(store_path),
                     "--dry-run"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 completed, 0 pending" in output
        assert store_path.exists()

    def test_dry_run_executes_nothing(self, tmp_path, capsys):
        store_path = tmp_path / "sweep.json"
        code = main(["sweep", *self.SMALL, "--store", str(store_path),
                     "--dry-run"])
        assert code == 0
        assert not store_path.exists(), "--dry-run must not write"


class TestSweepStatus:
    def test_quarantined_points_are_also_pending(self, tmp_path):
        spec = tiny_spec()
        point = spec.points()[0]
        store = SweepStore.open(tmp_path / "sweep.json", spec)
        store.add_failure(failure_record(point, attempts=3))
        store.save()
        status = sweep_status(spec, tmp_path / "sweep.json")
        assert status["quarantined"] == [point.point_id]
        assert point.point_id in status["pending"]
        assert status["completed"] == []
