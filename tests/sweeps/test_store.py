"""Tests for the JSON sweep result store."""

from __future__ import annotations

import json

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.sweeps import SweepSpec, SweepStore, run_sweep

TINY = FastSimulationConfig(
    n_nodes=40, bits=10, n_files=4, file_min=2, file_max=4
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        base=TINY, grid={"bucket_size": (4, 8)}, backends=("fast",),
        seeds=2,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestStore:
    def test_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        result = run_sweep(spec, store_path=path)
        assert result.executed == len(spec)

        loaded = SweepStore.load(path)
        assert loaded.spec == spec
        assert loaded.completed_ids() == {
            p.point_id for p in spec.points()
        }
        record = loaded.points[spec.points()[0].point_id]
        assert record["metrics"]["chunks"] > 0

    def test_resume_skips_completed(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        first = run_sweep(spec, store_path=path)
        second = run_sweep(spec, store_path=path)
        assert second.executed == 0
        assert second.resumed == len(spec)
        assert second.records == first.records
        assert second.summaries == first.summaries

    def test_partial_resume_completes_missing_points(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        run_sweep(spec, store_path=path)
        # Drop one recorded point to model an interrupted run.
        store = SweepStore.load(path)
        dropped = spec.points()[-1].point_id
        del store.points[dropped]
        store.save()

        resumed = run_sweep(spec, store_path=path)
        assert resumed.executed == 1
        assert resumed.resumed == len(spec) - 1
        assert SweepStore.load(path).completed_ids() == {
            p.point_id for p in spec.points()
        }

    def test_spec_mismatch_refused(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(), store_path=path)
        other = tiny_spec(grid={"bucket_size": (4, 16)})
        with pytest.raises(ConfigurationError, match="different spec"):
            run_sweep(other, store_path=path)

    def test_raised_seed_count_extends_the_store(self, tmp_path):
        # Replica seeds are prefix-stable, so seeds=2 -> seeds=3 only
        # has to execute the third replica of each cell.
        path = tmp_path / "sweep.json"
        first = run_sweep(tiny_spec(seeds=2), store_path=path)
        extended = run_sweep(tiny_spec(seeds=3), store_path=path)
        assert extended.resumed == len(tiny_spec(seeds=2))
        assert extended.executed == len(tiny_spec(seeds=3)) - \
            len(tiny_spec(seeds=2))
        # The shared replicas kept their recorded metrics verbatim.
        for record in first.records:
            match = next(r for r in extended.records
                         if r["point_id"] == record["point_id"])
            assert match == record
        assert SweepStore.load(path).spec == tiny_spec(seeds=3)

    def test_extended_store_matches_fresh_run_bytes(self, tmp_path):
        # Growing seeds=2 -> seeds=3 must leave no trace of the
        # smaller run: the extended store diffs empty against a fresh
        # seeds=3 sweep.
        extended = tmp_path / "extended.json"
        fresh = tmp_path / "fresh.json"
        run_sweep(tiny_spec(seeds=2), store_path=extended)
        run_sweep(tiny_spec(seeds=3), store_path=extended)
        run_sweep(tiny_spec(seeds=3), store_path=fresh)
        assert extended.read_bytes() == fresh.read_bytes()

    def test_lowered_seed_count_refused(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(seeds=3), store_path=path)
        with pytest.raises(ConfigurationError, match="different spec"):
            run_sweep(tiny_spec(seeds=2), store_path=path)

    def test_resume_preserves_recorded_provenance(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(), store_path=path)
        # Model a resume in a different environment: rewrite the
        # recorded provenance, then resume; the record must survive.
        document = json.loads(path.read_text())
        document["provenance"]["git_commit"] = "0" * 40
        document["provenance"]["python"] = "0.0.0"
        path.write_text(json.dumps(document, indent=2, sort_keys=True))

        run_sweep(tiny_spec(), store_path=path)
        provenance = json.loads(path.read_text())["provenance"]
        assert provenance["git_commit"] == "0" * 40
        assert provenance["python"] == "0.0.0"

    def test_no_resume_overwrites(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(), store_path=path)
        other = tiny_spec(grid={"bucket_size": (4, 16)})
        result = run_sweep(other, store_path=path, resume=False)
        assert result.executed == len(other)
        assert SweepStore.load(path).spec == other

    def test_store_is_deterministic_and_diffable(self, tmp_path):
        spec = tiny_spec()
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        run_sweep(spec, store_path=path_a)
        run_sweep(spec, store_path=path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_store_records_provenance_and_seed_table(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        run_sweep(spec, store_path=path)
        document = json.loads(path.read_text())
        provenance = document["provenance"]
        assert "git_commit" in provenance
        assert provenance["numpy"]
        assert provenance["seed_table"] == {
            str(r): seed
            for r, seed in enumerate(spec.workload_seeds())
        }

    def test_unreadable_store_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            SweepStore.load(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError, match="sweep store"):
            SweepStore.load(path)
