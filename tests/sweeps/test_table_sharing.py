"""Cross-process table sharing and worker-count hygiene.

The headline guarantee: a multi-seed, multi-worker sweep over one
topology builds its next-hop table **exactly once**, machine-wide.
The check is hardware-independent — it counts build events through
``REPRO_TABLE_BUILD_LOG``, not seconds.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.backends.config import FastSimulationConfig
from repro.backends.fast import TABLE_BUILD_LOG_ENV, clear_caches
from repro.errors import ConfigurationError
from repro.sweeps import (
    ProcessExecutor,
    SerialExecutor,
    SweepSpec,
    resolve_jobs,
    run_sweep,
    table_topologies,
)

#: Small but multi-hop: 120 nodes, 20 files, 2 workload cells x 3 seeds.
BASE = FastSimulationConfig(
    n_nodes=120, bits=12, bucket_size=4, n_files=20,
    file_min=4, file_max=8,
)
SPEC = SweepSpec(
    base=BASE,
    grid={"originator_share": (0.5, 1.0)},
    backends=("fast",),
    seeds=3,
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


def quiet_run(spec, **executor_kwargs):
    """Run suppressing the (expected on CI) oversubscription warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        executor = ProcessExecutor(**executor_kwargs)
        return executor.run(spec.base, spec.points())


class TestBuildOnce:
    def test_multiworker_sweep_builds_table_exactly_once(
            self, tmp_path, monkeypatch):
        """3 seeds x 2 grid points x 2 workers -> one build, total."""
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        clear_caches()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_sweep(SPEC, jobs=2)
        assert result.executed == len(SPEC)
        assert log.exists(), "the cold build should have been logged"
        lines = log.read_text().splitlines()
        assert len(lines) == 1, (
            f"expected exactly one table build across the sweep, got "
            f"{len(lines)}: {lines}"
        )
        # ... and it happened in the parent (publisher), not a worker.
        assert lines[0].split()[1] == str(os.getpid())

    def test_serial_sweep_also_builds_once(self, tmp_path, monkeypatch):
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        clear_caches()
        run_sweep(SPEC, jobs=1)
        assert len(log.read_text().splitlines()) == 1

    def test_without_table_cache_workers_rebuild(self, tmp_path,
                                                 monkeypatch):
        """--no-table-cache restores the rebuild-per-worker behavior."""
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        clear_caches()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run_sweep(SPEC, jobs=2, table_cache=False)
        pids = {line.split()[1] for line in log.read_text().splitlines()}
        assert str(os.getpid()) not in pids, (
            "without sharing, the parent should not build at all"
        )
        assert len(pids) >= 1, "workers should have built their own tables"


class TestSharedResultsIdentical:
    def test_shared_and_unshared_match_serial_exactly(self):
        serial = SerialExecutor().run(SPEC.base, SPEC.points())
        shared = quiet_run(SPEC, jobs=2, share_tables=True)
        unshared = quiet_run(SPEC, jobs=2, share_tables=False)
        for label, parallel in (("shared", shared), ("unshared", unshared)):
            assert [o.point_id for o in parallel] == [
                o.point_id for o in serial
            ]
            for ours, theirs in zip(parallel, serial):
                assert ours.metrics == theirs.metrics, label
                for name, vector in theirs.vectors.items():
                    assert np.array_equal(ours.vectors[name], vector), (
                        f"{label}: {ours.point_id} {name}"
                    )


class TestTableTopologies:
    def test_counts_unique_topologies_only(self):
        spec = SweepSpec(
            base=BASE,
            grid={"bucket_size": (4, 8), "originator_share": (0.5, 1.0)},
            backends=("fast", "fast-perfile"),
            seeds=2,
        )
        configs = table_topologies(spec.base, spec.points())
        # Only bucket_size changes the topology: 2 unique overlays for
        # 16 points.
        assert len(configs) == 2
        assert {c.limits.default for c in configs} == {4, 8}

    def test_skips_backends_without_tables(self):
        spec = SweepSpec(base=BASE, backends=("reference", "tit_for_tat"),
                         seeds=2)
        assert table_topologies(spec.base, spec.points()) == []

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            # Points are plain data, so a bogus name surfaces here.
            from repro.sweeps.spec import SweepPoint

            table_topologies(BASE, [SweepPoint(
                index=0, backend="bogus", overrides=(), replica=0,
                workload_seed=1,
            )])


class TestJobsHygiene:
    def test_oversubscription_warns_but_keeps_request(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="exceeds the 2 available"):
            assert resolve_jobs(8) == 8

    def test_cap_jobs_clamps_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="capping to 2"):
            assert resolve_jobs(8, cap_jobs=True) == 2

    def test_within_budget_is_silent(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(4) == 4
            assert resolve_jobs(8, cap_jobs=True) == 8

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)

    def test_executor_applies_cap(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning):
            executor = ProcessExecutor(jobs=8, cap_jobs=True)
        assert executor.jobs == 2


class TestCliFlags:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--grid",
                                          "bucket_size=4"])
        assert args.table_cache is True
        assert args.cap_jobs is False

    def test_parser_accepts_no_table_cache_and_cap_jobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "sweep", "--grid", "bucket_size=4", "--no-table-cache",
            "--cap-jobs",
        ])
        assert args.table_cache is False
        assert args.cap_jobs is True

    def test_bench_parser(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "bench", "--quick", "--out", str(tmp_path / "b.json"),
            "--baseline", "benchmarks/BENCH_quick.json",
            "--max-regression", "3.0",
        ])
        assert args.quick is True
        assert args.max_regression == 3.0
        assert args.strict_provenance is False


def fake_bench_record(dirty: bool) -> dict:
    return {
        "format": "repro-swarm-bench/1",
        "label": "quick",
        "config": {},
        "provenance": {"git_commit": "abc", "git_dirty": dirty},
        "workload": {"files": 1, "chunks": 1, "total_hops": 1},
        "metrics": {
            "table_build_seconds": 1.0,
            "table_encode_seconds": 0.1,
            "table_publish_seconds": 0.1,
            "table_attach_seconds": 0.001,
            "run_seconds": 0.5,
            "files_per_second": 2.0,
            "chunks_per_second": 2.0,
            "attach_vs_build_speedup": 1000.0,
        },
        "dynamics": {
            "scenario": "churn:rate=0.1",
            "workload": {"files": 1, "chunks": 1, "total_hops": 1},
            "metrics": {
                "run_seconds": 0.6,
                "chunks_per_second": 1.7,
                "slowdown_vs_static": 1.18,
            },
        },
        "latency": {
            "profile": {"hop_latency_ms": 30.0},
            "workload": {"files": 1, "chunks": 1, "total_hops": 1},
            "metrics": {
                "run_seconds": 0.8,
                "chunks_per_second": 1.2,
                "slowdown_vs_static": 1.6,
                "latency_p50_ms": 180.0,
                "latency_p95_ms": 320.0,
                "latency_p99_ms": 400.0,
            },
        },
        "sweep": {
            "spec": {
                "n_nodes": 150, "n_files": 200,
                "grid": {"bucket_size": [4, 8]},
                "backends": ["fast"], "seeds": 2, "points": 4,
            },
            "metrics": {
                "serial_seconds": 2.0,
                "serial_points_per_second": 2.0,
                "jobs2_seconds": 1.3,
                "jobs2_points_per_second": 3.1,
                "parallel_speedup": 1.55,
            },
        },
        "serve": {
            "max_batch": 256,
            "workload": {"files": 1, "chunks": 1, "total_hops": 1},
            "metrics": {
                "run_seconds": 0.55,
                "chunks_per_second": 1.9,
                "slowdown_vs_static": 1.05,
                "rss_kib": 100_000,
                "rss_growth_kib": 50,
            },
        },
    }


class TestDynamicsRegressionGate:
    """check_regression covers the dynamics headline too."""

    def test_dynamics_drop_fails_gate(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        current["dynamics"]["metrics"]["chunks_per_second"] = 0.5
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "dynamics throughput regression" in problems[0]

    def test_pre_dynamics_baseline_gates_static_only(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        del baseline["dynamics"]
        current["dynamics"]["metrics"]["chunks_per_second"] = 1e-6
        assert check_regression(current, baseline, 2.0) == []

    def test_mismatched_dynamics_workload_refuses_to_compare(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        baseline["dynamics"]["workload"]["chunks"] = 2
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "meaningless" in problems[0]

    def test_matching_records_pass(self):
        from repro.perf.bench import check_regression

        assert check_regression(
            fake_bench_record(False), fake_bench_record(False), 2.0
        ) == []


class TestLatencyRegressionGate:
    """check_regression covers the time-domain headline too."""

    def test_latency_drop_fails_gate(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        current["latency"]["metrics"]["chunks_per_second"] = 0.1
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "time-domain throughput regression" in problems[0]

    def test_pre_latency_baseline_gates_without_it(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        del baseline["latency"]
        current["latency"]["metrics"]["chunks_per_second"] = 1e-6
        assert check_regression(current, baseline, 2.0) == []

    def test_mismatched_latency_profile_refuses_to_compare(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        baseline["latency"]["profile"]["hop_latency_ms"] = 5.0
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "meaningless" in problems[0]


class TestSweepRegressionGate:
    """check_regression covers the sweep-engine headline too."""

    def test_serial_drop_fails_gate(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        current["sweep"]["metrics"]["serial_points_per_second"] = 0.5
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "sweep-engine regression" in problems[0]

    def test_parallel_speedup_is_not_gated(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        # 1-core runners legitimately invert the speedup; only the
        # serial per-point overhead is a code property.
        current["sweep"]["metrics"]["jobs2_points_per_second"] = 0.1
        current["sweep"]["metrics"]["parallel_speedup"] = 0.05
        assert check_regression(current, baseline, 2.0) == []

    def test_pre_sweep_baseline_gates_without_it(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        del baseline["sweep"]
        current["sweep"]["metrics"]["serial_points_per_second"] = 1e-6
        assert check_regression(current, baseline, 2.0) == []

    def test_mismatched_sweep_spec_refuses_to_compare(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        baseline["sweep"]["spec"]["seeds"] = 5
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "meaningless" in problems[0]


class TestServeRegressionGate:
    """check_regression covers the streaming (serve) headline too."""

    def test_streamed_throughput_drop_fails_gate(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        current["serve"]["metrics"]["chunks_per_second"] = 0.5
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "serve streaming regression" in problems[0]

    def test_rss_is_not_gated(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        # RSS is a machine property, recorded but never gated.
        current["serve"]["metrics"]["rss_kib"] = 10_000_000
        current["serve"]["metrics"]["rss_growth_kib"] = 500_000
        assert check_regression(current, baseline, 2.0) == []

    def test_pre_serve_baseline_gates_without_it(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        del baseline["serve"]
        current["serve"]["metrics"]["chunks_per_second"] = 1e-6
        assert check_regression(current, baseline, 2.0) == []

    def test_mismatched_serve_batching_refuses_to_compare(self):
        from repro.perf.bench import check_regression

        current = fake_bench_record(False)
        baseline = fake_bench_record(False)
        baseline["serve"]["max_batch"] = 64
        problems = check_regression(current, baseline, 2.0)
        assert len(problems) == 1
        assert "meaningless" in problems[0]


class TestBenchProvenance:
    """Baseline-writing hygiene: dirty trees warn; --strict refuses."""

    @pytest.fixture()
    def patched_bench(self, monkeypatch):
        import repro.perf.bench as bench

        state = {"dirty": True}
        monkeypatch.setattr(
            bench, "headline_bench",
            lambda *, quick, repeats: fake_bench_record(state["dirty"]),
        )
        return state

    def test_dirty_tree_warns_but_writes(self, patched_bench, tmp_path,
                                         capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        err = capsys.readouterr().err
        assert "DIRTY git tree" in err
        assert "Do not commit this as a baseline" in err

    def test_strict_provenance_refuses_dirty_tree(self, patched_bench,
                                                  tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--strict-provenance", "--out", str(out),
        ])
        assert code == 1
        assert not out.exists()
        assert "REFUSING" in capsys.readouterr().err

    def test_clean_tree_is_silent(self, patched_bench, tmp_path, capsys):
        from repro.cli import main

        patched_bench["dirty"] = False
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--strict-provenance", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert capsys.readouterr().err == ""

    def test_committed_baselines_are_clean(self):
        """The repo's own baselines must carry clean provenance."""
        import json
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        for name in ("BENCH_headline.json", "benchmarks/BENCH_quick.json"):
            record = json.loads((repo / name).read_text())
            assert record["provenance"]["git_dirty"] is False, (
                f"{name} was recorded from a dirty tree; regenerate it "
                f"with repro-swarm bench --strict-provenance"
            )
