"""Sweep determinism: serial == parallel == shuffled, exact vectors.

The load-bearing guarantee of the sweep engine: however points are
scheduled — in-process, across spawn workers, or in a shuffled order —
every backend in the registry produces bit-identical per-node result
vectors for every point. One process pool serves all backends at tiny
scale so the (slow, single-core CI) spawn path is exercised exactly
once.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.backends import available_backends
from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.sweeps import (
    ProcessExecutor,
    SerialExecutor,
    SweepSpec,
    make_executor,
    run_sweep,
)

#: Small enough for the pure-python reference simulator and the
#: tit-for-tat choke loop, non-trivial enough for multi-hop routes.
TINY = FastSimulationConfig(
    n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
)

VECTOR_KEYS = ("forwarded", "first_hop", "income", "expenditure")


def expect_oversubscription_warning(monkeypatch):
    """Make the resolve_jobs oversubscription warning deterministic.

    The warning fires only when jobs exceed ``os.cpu_count()`` — a
    machine property — so tests that spawn 2 workers pin the visible
    CPU count to 1 and *assert* the RuntimeWarning instead of letting
    it leak into tier-1 output on small machines (and silently not
    fire on large ones).
    """
    monkeypatch.setattr("repro.sweeps.executors.os.cpu_count", lambda: 1)
    return pytest.warns(RuntimeWarning, match="exceeds the 1 available")


def all_backend_spec(seeds: int = 2) -> SweepSpec:
    return SweepSpec(
        base=TINY,
        grid={"bucket_size": (4,)},
        backends=tuple(available_backends()),
        seeds=seeds,
    )


def assert_outcomes_identical(lhs, rhs):
    assert [o.point_id for o in lhs] == [o.point_id for o in rhs]
    for a, b in zip(lhs, rhs):
        assert a.metrics == b.metrics, a.point_id
        for key in VECTOR_KEYS:
            assert np.array_equal(a.vectors[key], b.vectors[key]), (
                f"{a.point_id}: {key} vectors differ"
            )


@pytest.fixture(scope="module")
def serial_outcomes():
    spec = all_backend_spec()
    return spec, SerialExecutor().run(spec.base, spec.points())


class TestDeterminism:
    def test_every_registry_backend_is_covered(self, serial_outcomes):
        spec, outcomes = serial_outcomes
        assert set(available_backends()) == {o.backend for o in outcomes}

    def test_serial_rerun_is_identical(self, serial_outcomes):
        spec, outcomes = serial_outcomes
        again = SerialExecutor().run(spec.base, spec.points())
        assert_outcomes_identical(outcomes, again)

    def test_shuffled_point_order_is_identical(self, serial_outcomes):
        spec, outcomes = serial_outcomes
        shuffled = list(spec.points())
        random.Random(13).shuffle(shuffled)
        assert [p.index for p in shuffled] != sorted(
            p.index for p in shuffled
        )
        reordered = SerialExecutor().run(spec.base, shuffled)
        assert_outcomes_identical(outcomes, reordered)

    def test_parallel_executor_is_identical(self, serial_outcomes,
                                            monkeypatch):
        spec, outcomes = serial_outcomes
        with expect_oversubscription_warning(monkeypatch):
            executor = ProcessExecutor(jobs=2)
        parallel = executor.run(spec.base, spec.points())
        assert_outcomes_identical(outcomes, parallel)

    def test_replicas_actually_differ(self, serial_outcomes):
        # Distinct derived seeds must produce distinct workloads —
        # otherwise the "replication" is 2x the same point.
        spec, outcomes = serial_outcomes
        by_backend: dict[str, list] = {}
        for outcome in outcomes:
            by_backend.setdefault(outcome.backend, []).append(outcome)
        for backend, pair in by_backend.items():
            r0, r1 = pair
            assert r0.workload_seed != r1.workload_seed
            assert not np.array_equal(
                r0.vectors["forwarded"], r1.vectors["forwarded"]
            ), f"{backend}: replicas produced identical traffic"


def test_make_executor_selection_and_validation(monkeypatch):
    assert isinstance(make_executor(1), SerialExecutor)
    with expect_oversubscription_warning(monkeypatch):
        executor = make_executor(2)
    assert isinstance(executor, ProcessExecutor)
    for bad in (0, -1):
        with pytest.raises(ConfigurationError, match="jobs"):
            make_executor(bad)


def test_parallel_store_bytes_match_serial(tmp_path, monkeypatch):
    """The acceptance check: stores diff empty across job counts."""
    spec = SweepSpec(
        base=TINY, grid={"bucket_size": (4, 8)}, backends=("fast",),
        seeds=2,
    )
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    run_sweep(spec, jobs=1, store_path=serial_path)
    with expect_oversubscription_warning(monkeypatch):
        run_sweep(spec, jobs=2, store_path=parallel_path)
    assert serial_path.read_bytes() == parallel_path.read_bytes()
