"""Unit tests for the failure-envelope / retry-policy layer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sweeps import SweepSpec, failure_digest
from repro.sweeps.resilience import (
    FailureTracker,
    PointFailure,
    PointResult,
    RetryPolicy,
)
from tests.sweeps.test_store import TINY


def one_point():
    spec = SweepSpec(base=TINY, grid={"bucket_size": (4,)},
                     backends=("fast",), seeds=1)
    return spec.points()[0]


class TestRetryPolicy:
    def test_allows_exactly_max_retries_extra_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_zero_retries_means_one_attempt(self):
        assert not RetryPolicy(max_retries=0).allows(0)

    def test_backoff_is_capped_exponential_without_jitter(self):
        policy = RetryPolicy(max_retries=10, backoff_base=0.1,
                             backoff_cap=0.5)
        delays = [policy.delay(attempt) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
        # Deterministic: same attempt, same delay, every time.
        assert policy.delay(2) == policy.delay(2)

    def test_invalid_parameters_refused(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-0.1)


class TestFailureDigest:
    def test_same_error_same_digest(self):
        assert failure_digest(ValueError("boom")) == \
            failure_digest(ValueError("boom"))

    def test_different_message_different_digest(self):
        assert failure_digest(ValueError("a")) != \
            failure_digest(ValueError("b"))

    def test_digest_covers_the_cause_chain(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise ValueError("outer") from inner
        except ValueError as chained:
            with_cause = failure_digest(chained)
        assert with_cause != failure_digest(ValueError("outer"))

    def test_digest_is_short_stable_hex(self):
        digest = failure_digest(RuntimeError("x"))
        assert len(digest) == 16
        int(digest, 16)  # hex or raises


class TestPointResult:
    def test_envelope_holds_exactly_one_side(self):
        point = one_point()
        failure = PointFailure(point=point, kind="exception",
                               error="ValueError: boom",
                               digest="0" * 16, attempts=3)
        result = PointResult(outcome=None, failure=failure, attempts=3)
        assert not result.ok
        with pytest.raises(ConfigurationError):
            PointResult(outcome=None, failure=None, attempts=1)

    def test_failure_record_is_plain_sorted_data(self):
        point = one_point()
        failure = PointFailure(point=point, kind="timeout",
                               error="PointTimeout: too slow",
                               digest="f" * 16, attempts=2)
        record = failure.record()
        assert record["point_id"] == point.point_id
        assert record["kind"] == "timeout"
        assert record["attempts"] == 2
        # Deterministic store material: no timestamps, no paths.
        assert set(record) == {
            "point_id", "backend", "overrides", "replica",
            "workload_seed", "kind", "error", "digest", "attempts",
        }

    def test_describe_names_the_point_and_kind(self):
        point = one_point()
        failure = PointFailure(point=point, kind="crash",
                               error="WorkerCrash: died",
                               digest="a" * 16, attempts=1)
        text = failure.describe()
        assert point.point_id in text
        assert "crash" in text


class TestFailureTracker:
    def test_retries_then_quarantines(self):
        point = one_point()
        tracker = FailureTracker(RetryPolicy(max_retries=2))
        error = ValueError("boom")
        assert tracker.record(point, "exception", error) is None
        assert tracker.failed_attempts(point) == 1
        assert tracker.record(point, "exception", error) is None
        final = tracker.record(point, "exception", error)
        assert final is not None
        assert final.attempts == 3
        assert tracker.quarantined == [final]

    def test_unknown_kind_refused(self):
        # Validation lives in PointFailure, built once the budget is
        # exhausted — max_retries=0 makes the first failure terminal.
        tracker = FailureTracker(RetryPolicy(max_retries=0))
        with pytest.raises(ConfigurationError, match="meteor"):
            tracker.record(one_point(), "meteor", ValueError("x"))
