"""CLI tests for ``repro-swarm sweep`` and the registry smoke run."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.sweeps import SweepStore

SMALL = ["--files", "40", "--nodes", "60", "--seeds", "2"]


class TestSweepParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.grid == []
        assert args.seeds == 3
        assert args.backend == "fast"
        assert args.jobs == 1
        assert args.store is None
        assert args.epoch_cache_tables is None

    def test_epoch_cache_tables_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--epoch-cache-tables", "64"]
        )
        assert args.epoch_cache_tables == 64

    def test_grid_repeatable_and_jobs(self):
        args = build_parser().parse_args([
            "sweep", "--grid", "bucket_size=4,8",
            "--grid", "originator_share=0.2,1.0",
            "--jobs", "4", "--seeds", "10",
            "--backend", "fast,reference",
        ])
        assert args.grid == [
            "bucket_size=4,8", "originator_share=0.2,1.0"
        ]
        assert args.jobs == 4
        assert args.seeds == 10
        assert args.backend == "fast,reference"


class TestSweepCommand:
    def test_runs_grid_and_reports_cis(self, capsys):
        code = main([
            "sweep", "--grid", "bucket_size=4,8", *SMALL,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "4 points" in output  # 2 cells x 1 backend x 2 seeds
        assert "bucket_size=4" in output
        assert "bucket_size=8" in output
        assert "points/s" in output

    def test_bad_grid_field_raises_with_fields(self):
        with pytest.raises(ConfigurationError, match="sweepable fields"):
            main(["sweep", "--grid", "bogus=1", *SMALL])

    def test_bad_backend_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="available"):
            main([
                "sweep", "--grid", "bucket_size=4",
                "--backend", "bogus", *SMALL,
            ])

    def test_store_round_trip_and_resume(self, tmp_path, capsys):
        store = tmp_path / "sweep.json"
        code = main([
            "sweep", "--grid", "bucket_size=4,8", *SMALL,
            "--store", str(store),
        ])
        assert code == 0
        capsys.readouterr()

        loaded = SweepStore.load(store)
        assert len(loaded) == 4
        document = json.loads(store.read_text())
        assert document["format"].startswith("repro-swarm-sweep")

        # Second invocation resumes every point from the store.
        code = main([
            "sweep", "--grid", "bucket_size=4,8", *SMALL,
            "--store", str(store),
        ])
        assert code == 0
        assert "resumed from store" in capsys.readouterr().out

    def test_jobs_flag_runs_multiprocess(self, capsys, monkeypatch):
        # Tiny but real: exercises the spawn pool end to end. The CPU
        # count is pinned to 1 so the oversubscription warning fires
        # deterministically and is asserted instead of leaking.
        from .test_determinism import expect_oversubscription_warning

        with expect_oversubscription_warning(monkeypatch):
            code = main([
                "sweep", "--grid", "bucket_size=4", "--jobs", "2",
                "--files", "10", "--nodes", "40", "--seeds", "2",
            ])
        assert code == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_fault_tolerance_flag_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.max_retries == 2
        assert args.point_timeout is None
        assert args.keep_going is True
        assert args.fault_plan is None
        assert args.salvage_store is False

    def test_fail_fast_flag_flips_keep_going(self):
        args = build_parser().parse_args(["sweep", "--fail-fast"])
        assert args.keep_going is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--keep-going", "--fail-fast"]
            )

    def test_quarantine_reports_and_exits_nonzero(self, tmp_path,
                                                  capsys):
        # A poison point (faulted on every attempt) is quarantined;
        # the CLI summarizes it and exits 1.
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"faults": [
            {"point_id": "fast|bucket_size=4|r0", "attempt": a,
             "kind": "exception", "message": "poison"}
            for a in range(2)
        ]}))
        store = tmp_path / "sweep.json"
        code = main([
            "sweep", "--grid", "bucket_size=4", *SMALL,
            "--store", str(store), "--fault-plan", str(plan),
            "--max-retries", "1",
        ])
        assert code == 1
        output = capsys.readouterr().out
        assert "1 point(s) quarantined" in output
        assert "poison" in output
        document = json.loads(store.read_text())
        assert "fast|bucket_size=4|r0" in document["failures"]

    def test_salvage_store_flag_recovers_corrupt_store(self, tmp_path,
                                                       capsys):
        store = tmp_path / "sweep.json"
        argv = ["sweep", "--grid", "bucket_size=4", *SMALL,
                "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        clean = store.read_bytes()
        store.write_bytes(clean[: len(clean) // 3])

        with pytest.raises(ConfigurationError, match="cannot read"):
            main(argv)
        with pytest.warns(RuntimeWarning, match="salvaged"):
            code = main(argv + ["--salvage-store"])
        assert code == 0
        assert store.read_bytes() == clean

    def test_markdown_and_out_file(self, tmp_path, capsys):
        out = tmp_path / "sweep.md"
        code = main([
            "sweep", "--grid", "bucket_size=4", *SMALL,
            "--markdown", "--out", str(out),
        ])
        assert code == 0
        assert "| backend |" in out.read_text()
        assert f"report written to {out}" in capsys.readouterr().out


class TestRegistrySmoke:
    def test_run_all_scaled_down_passes_through_registry(self, capsys):
        """Every registered experiment — including the replicated
        sweep runners — still executes end to end at smoke scale."""
        code = main(["run", "all", "--files", "50", "--nodes", "120"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("table1", "table1_sweep", "fig5_sweep",
                     "k_sweep_ci", "baselines", "storage"):
            assert f"[{name} completed in" in output
