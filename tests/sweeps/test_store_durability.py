"""Durability and salvage behavior of the JSON sweep store."""

from __future__ import annotations

import json

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.sweeps import SweepSpec, SweepStore, run_sweep

TINY = FastSimulationConfig(
    n_nodes=40, bits=10, n_files=4, file_min=2, file_max=4
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(base=TINY, grid={"bucket_size": (4, 8)},
                    backends=("fast",), seeds=2)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestDurability:
    def test_stale_tmp_file_is_swept_on_open(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        run_sweep(spec, store_path=path)
        # Model a run killed between temp-write and rename.
        stale = path.with_suffix(path.suffix + ".tmp")
        stale.write_text("{ partial garbage")
        with pytest.warns(RuntimeWarning, match="stale sweep store"):
            store = SweepStore.open(path, spec)
        assert not stale.exists()
        # The blessed file was untouched by the sweep-up.
        assert store.completed_ids() == {
            p.point_id for p in spec.points()
        }

    def test_save_leaves_no_tmp_behind(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(), store_path=path)
        assert not path.with_suffix(path.suffix + ".tmp").exists()
        assert path.exists()

    def test_failures_section_omitted_when_empty(self, tmp_path):
        # Byte-compat: healthy stores are identical to stores written
        # before the failures section existed.
        path = tmp_path / "sweep.json"
        run_sweep(tiny_spec(), store_path=path)
        assert "failures" not in json.loads(path.read_text())

    def test_success_supersedes_stale_failure(self, tmp_path):
        spec = tiny_spec()
        store = SweepStore(tmp_path / "s.json", spec)
        point = spec.points()[0]
        store.add_failure({
            "point_id": point.point_id, "backend": point.backend,
            "overrides": dict(point.overrides),
            "replica": point.replica,
            "workload_seed": point.workload_seed,
            "kind": "exception", "error": "ValueError: x",
            "digest": "0" * 16, "attempts": 3,
        })
        assert point.point_id in store.failures
        store.add({"point_id": point.point_id, "backend": point.backend,
                   "overrides": dict(point.overrides),
                   "replica": point.replica,
                   "workload_seed": point.workload_seed,
                   "metrics": {"chunks": 1}})
        assert point.point_id not in store.failures


class TestSalvage:
    def complete_store(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "sweep.json"
        run_sweep(spec, store_path=path)
        return spec, path

    def test_clean_file_salvages_to_itself(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        store, notes = SweepStore.salvage(path)
        assert store.completed_ids() == {
            p.point_id for p in spec.points()
        }
        assert any("cleanly" in note for note in notes)

    def test_truncated_store_recovers_early_records(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        text = path.read_text()
        # Cut mid-way through the points section (keys sort as
        # format < points < provenance < spec, so truncation destroys
        # the spec and provenance first, then eats points records from
        # the back).
        path.write_text(text[: int(len(text) * 0.35)])
        with pytest.raises(ConfigurationError, match="cannot read"):
            SweepStore.load(path)
        store, notes = SweepStore.salvage(path, spec=spec)
        recovered = store.completed_ids()
        assert recovered  # something survived...
        assert recovered < {p.point_id for p in spec.points()}  # ...not all
        for record in store.points.values():
            assert isinstance(record["metrics"], dict)
        assert any("truncated" in note for note in notes)

    def test_truncation_without_spec_needs_a_fallback(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        path.write_text(path.read_text()[:200])
        with pytest.raises(ConfigurationError, match="salvage"):
            SweepStore.salvage(path)

    def test_corrupt_middle_drops_only_damaged_records(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        text = path.read_text()
        start = text.find('"points":')
        # Stomp a chunk of the first point record with garbage.
        corrupted = text[: start + 40] + "\x00GARBAGE\x00" \
            + text[start + 60:]
        path.write_text(corrupted)
        store, _ = SweepStore.salvage(path, spec=spec)
        assert store.completed_ids() < {
            p.point_id for p in spec.points()
        }

    def test_salvage_drops_records_of_foreign_points(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        document = json.loads(path.read_text())
        a_record = next(iter(document["points"].values()))
        document["points"]["fast|bucket_size=999|r9"] = a_record
        # Break the spec so load() refuses and salvage must validate
        # records against the fallback spec.
        document["spec"] = "not a spec"
        path.write_text(json.dumps(document, indent=2, sort_keys=True))
        store, notes = SweepStore.salvage(path, spec=spec)
        assert "fast|bucket_size=999|r9" not in store.points
        assert any("dropped 1 unusable" in note for note in notes)

    def test_salvaged_resume_matches_clean_run_bytes(self, tmp_path):
        # The round-trip satellite: truncate, salvage, resume — the
        # final store is byte-identical to a never-corrupted run.
        spec, path = self.complete_store(tmp_path)
        clean_bytes = path.read_bytes()
        path.write_bytes(clean_bytes[: int(len(clean_bytes) * 0.35)])
        with pytest.warns(RuntimeWarning, match="salvaged"):
            result = run_sweep(spec, store_path=path, salvage=True)
        assert result.executed > 0
        assert result.executed + result.resumed == len(spec)
        assert path.read_bytes() == clean_bytes

    def test_corrupt_store_without_salvage_still_refuses(self, tmp_path):
        spec, path = self.complete_store(tmp_path)
        path.write_text(path.read_text()[:100])
        with pytest.raises(ConfigurationError, match="cannot read"):
            run_sweep(spec, store_path=path)
