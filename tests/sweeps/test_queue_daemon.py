"""Unit tests for the distributed sweep work queue.

:class:`QueueState` is exercised directly (no sockets, fake clock):
lease ordering and attempt numbers, completion idempotence, the
retry-then-quarantine ladder, lease expiry charging exactly one
``crash`` attempt, and the stale-report guard that keeps a
double-charge from ever happening. A short HTTP section smoke-tests
the daemon's JSON protocol end to end over loopback.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.sweeps import RetryPolicy, SweepSpec
from repro.sweeps.queue_daemon import (
    LEASE_CRASH_DIGEST,
    LEASE_CRASH_ERROR,
    QueueState,
    SweepQueueDaemon,
)

TINY = FastSimulationConfig(
    n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(base=TINY, grid={"bucket_size": (4, 8)},
                    backends=("fast",), seeds=2)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


def make_state(spec=None, **kwargs) -> tuple[QueueState, FakeClock]:
    spec = spec or tiny_spec()
    clock = FakeClock()
    kwargs.setdefault("retry_policy",
                      RetryPolicy(max_retries=2, backoff_base=0.0))
    state = QueueState(spec, spec.points(), clock=clock, **kwargs)
    return state, clock


def fake_record(point_id: str) -> dict:
    return {"point_id": point_id, "backend": "fast", "overrides": {},
            "replica": 0, "workload_seed": 1, "metrics": {"chunks": 1}}


class TestLease:
    def test_leases_in_canonical_order(self):
        state, _ = make_state()
        expected = [p.point_id for p in state.spec.points()]
        got = []
        while True:
            response = state.lease("w", 1)
            if not response["points"]:
                break
            got.append(response["points"][0]["point"]["point_id"])
        assert got == expected

    def test_batch_lease_respects_count(self):
        state, _ = make_state()
        response = state.lease("w", 3)
        assert len(response["points"]) == 3
        assert state.status()["leased"] == 3

    def test_fresh_points_carry_attempt_zero(self):
        state, _ = make_state()
        response = state.lease("w", 4)
        assert [e["attempt"] for e in response["points"]] == [0, 0, 0, 0]

    def test_seeded_attempts_surface_in_lease(self):
        spec = tiny_spec()
        first = spec.points()[0].point_id
        state, _ = make_state(spec, attempts={first: 2})
        response = state.lease("w", 1)
        assert response["points"][0]["attempt"] == 2

    def test_idle_worker_gets_retry_after_not_done(self):
        state, _ = make_state()
        state.lease("a", len(state.points))  # everything leased out
        response = state.lease("b", 1)
        assert response["points"] == []
        assert response["done"] is False
        assert response["retry_after"] is not None

    def test_invalid_lease_timeout_refused(self):
        spec = tiny_spec()
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            QueueState(spec, spec.points(), lease_timeout=0.0)


class TestComplete:
    def test_complete_settles_and_emits(self):
        state, _ = make_state()
        leased = state.lease("w", 1)["points"][0]
        point_id = leased["point"]["point_id"]
        response = state.complete("w", fake_record(point_id), 0, 0.1)
        assert response["ok"] and not response["duplicate"]
        kind, record, index, elapsed = state.events.get_nowait()
        assert kind == "result" and record["point_id"] == point_id

    def test_duplicate_completion_dedups(self):
        state, _ = make_state()
        leased = state.lease("w", 1)["points"][0]
        point_id = leased["point"]["point_id"]
        state.complete("w", fake_record(point_id), 0, 0.1)
        response = state.complete("other", fake_record(point_id), 0, 0.2)
        assert response["duplicate"] is True
        state.events.get_nowait()
        assert state.events.empty(), "a duplicate must not re-emit"

    def test_unknown_point_refused(self):
        state, _ = make_state()
        with pytest.raises(KeyError):
            state.complete("w", fake_record("no|such|point"), 0, 0.1)

    def test_final_completion_reports_done(self):
        state, _ = make_state()
        responses = []
        while True:
            leased = state.lease("w", 1)["points"]
            if not leased:
                break
            point_id = leased[0]["point"]["point_id"]
            responses.append(
                state.complete("w", fake_record(point_id), 0, 0.1)
            )
        assert [r["done"] for r in responses[:-1]] == [False] * 3
        assert responses[-1]["done"] is True
        assert state.finished


class TestFail:
    def test_retry_then_quarantine_with_global_numbering(self):
        state, _ = make_state()
        # Lease the whole queue so the failing point is the only one
        # ever requeued (a requeue lands *behind* untouched pending
        # points, by design).
        leased = state.lease("w", 4)["points"]
        target = leased[0]["point"]["point_id"]
        verdicts = []
        for _ in range(3):  # max_retries=2 -> third report is terminal
            verdicts.append(
                state.fail("w", target, "exception", "E: boom", "d" * 16)
            )
            if verdicts[-1]["retry"]:
                leased = state.lease("w", 1)["points"][0]
                assert leased["point"]["point_id"] == target
        assert [v["retry"] for v in verdicts] == [True, True, False]
        record = verdicts[-1]["failure"]
        assert record["point_id"] == target
        assert record["attempts"] == 3
        kind, failure = state.events.get_nowait()
        assert kind == "failure" and failure.attempts == 3

    def test_requeued_point_carries_bumped_attempt(self):
        state, _ = make_state()
        target = state.lease("w", 4)["points"][0]["point"]["point_id"]
        state.fail("w", target, "exception", "E: boom", "d" * 16)
        leased = state.lease("w", 1)["points"][0]
        assert leased["point"]["point_id"] == target
        assert leased["attempt"] == 1

    def test_stale_report_is_ignored(self):
        state, clock = make_state(lease_timeout=10.0)
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        clock.tick(11.0)
        state.expire_overdue()  # charges the crash attempt
        verdict = state.fail("w", target, "exception", "E: late", "x" * 16)
        assert verdict.get("stale") is True
        assert state.tracker.attempts[target] == 1, (
            "the expiry charge must not be doubled by the late report"
        )

    def test_success_supersedes_quarantine(self):
        state, _ = make_state(
            retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0)
        )
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        state.fail("w", target, "exception", "E: boom", "d" * 16)
        assert target in state.terminal
        # A re-lease elsewhere completed meanwhile (false expiry race).
        state.complete("other", fake_record(target), 0, 0.1)
        assert target not in state.terminal
        assert state.status()["quarantined"] == 0


class TestExpiry:
    def test_expired_lease_charges_exactly_one_crash(self):
        state, clock = make_state(lease_timeout=5.0)
        leased = state.lease("w", 4)["points"]
        target = leased[0]["point"]["point_id"]
        for entry in leased[1:]:  # settle the rest so only it expires
            state.complete("w", fake_record(entry["point"]["point_id"]),
                           0, 0.1)
        clock.tick(6.0)
        assert state.expire_overdue() == [target]
        assert state.tracker.attempts[target] == 1
        # The point is ready again for any worker, attempt bumped.
        leased = state.lease("other", 1)["points"][0]
        assert leased["point"]["point_id"] == target
        assert leased["attempt"] == 1

    def test_exhausted_expiries_quarantine_with_fixed_record(self):
        state, clock = make_state(
            lease_timeout=5.0,
            retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        clock.tick(6.0)
        state.expire_overdue()
        record = state.terminal[target]
        assert record["kind"] == "crash"
        assert record["error"] == LEASE_CRASH_ERROR
        assert record["digest"] == LEASE_CRASH_DIGEST

    def test_heartbeat_renews_leases(self):
        state, clock = make_state(lease_timeout=5.0)
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        clock.tick(4.0)
        assert state.heartbeat("w")["renewed"] == 1
        clock.tick(4.0)  # 8s total, but renewed at 4s
        assert state.expire_overdue() == []
        assert target in state.leases

    def test_expire_worker_targets_one_host(self):
        state, _ = make_state()
        state.lease("a", 2)
        state.lease("b", 2)
        expired = state.expire_worker("a")
        assert len(expired) == 2
        assert all(lease["worker"] == "b"
                   for lease in state.leases.values())

    def test_completed_point_never_expires(self):
        state, clock = make_state(lease_timeout=5.0)
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        state.complete("w", fake_record(target), 0, 0.1)
        clock.tick(6.0)
        assert state.expire_overdue() == []
        assert target not in state.tracker.attempts


class TestStatus:
    def test_counters_track_the_lifecycle(self):
        state, _ = make_state()
        assert state.status() == {
            "total": 4, "pending": 4, "leased": 0, "completed": 0,
            "quarantined": 0, "done": False,
        }
        target = state.lease("w", 1)["points"][0]["point"]["point_id"]
        assert state.status()["leased"] == 1
        state.complete("w", fake_record(target), 0, 0.1)
        counters = state.status()
        assert counters["completed"] == 1
        assert counters["pending"] == 3


def http_json(url: str, payload: dict | None = None) -> dict:
    data = None if payload is None else json.dumps(payload).encode()
    with urllib.request.urlopen(
            urllib.request.Request(url, data=data), timeout=10.0
    ) as response:
        return json.loads(response.read())


class TestDaemonHTTP:
    def test_protocol_round_trip_over_loopback(self):
        spec = tiny_spec()
        state, _ = make_state(spec)
        daemon = SweepQueueDaemon(state).start()
        try:
            handshake = http_json(f"{daemon.url}/spec")
            assert (SweepSpec.from_json(handshake["spec"]).points()
                    == spec.points())
            leased = http_json(f"{daemon.url}/lease",
                               {"worker": "w", "count": 2})
            assert len(leased["points"]) == 2
            first = leased["points"][0]["point"]["point_id"]
            done = http_json(f"{daemon.url}/complete", {
                "worker": "w", "record": fake_record(first),
                "index": 0, "elapsed": 0.1,
            })
            assert done["ok"] is True
            second = leased["points"][1]["point"]["point_id"]
            verdict = http_json(f"{daemon.url}/fail", {
                "worker": "w", "point_id": second, "kind": "exception",
                "error": "E: boom", "digest": "d" * 16,
            })
            assert verdict["retry"] is True
            assert http_json(f"{daemon.url}/heartbeat",
                             {"worker": "w"})["renewed"] == 0
            assert http_json(f"{daemon.url}/status")["completed"] == 1
        finally:
            daemon.close()

    def test_unknown_path_and_bad_body_are_http_errors(self):
        state, _ = make_state()
        daemon = SweepQueueDaemon(state).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as missing:
                http_json(f"{daemon.url}/nope")
            assert missing.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as bad:
                http_json(f"{daemon.url}/lease", {"count": 1})
            assert bad.value.code == 400
        finally:
            daemon.close()
