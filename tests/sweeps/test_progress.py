"""Unit tests for the shared sweep progress reporter."""

from __future__ import annotations

import io

import pytest

from repro.backends.config import FastSimulationConfig
from repro.sweeps import ProgressReporter, SweepSpec, run_sweep
from repro.sweeps.progress import _format_eta


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TtyStream(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestEnableLogic:
    def test_auto_off_on_non_tty(self):
        stream = io.StringIO()
        reporter = ProgressReporter(4, stream=stream)
        reporter.advance()
        reporter.close()
        assert stream.getvalue() == ""

    def test_auto_on_for_tty(self):
        stream = TtyStream()
        reporter = ProgressReporter(4, stream=stream,
                                    clock=FakeClock())
        reporter.advance()
        reporter.close()
        assert "sweep 1/4" in stream.getvalue()

    def test_forced_on_writes_lines_to_non_tty(self):
        stream = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter(2, enabled=True, stream=stream,
                                    clock=clock)
        reporter.advance()
        clock.tick(1.0)
        reporter.advance()
        reporter.close()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("sweep 1/2")
        assert lines[-1].startswith("sweep 2/2")

    def test_forced_off_silences_a_tty(self):
        stream = TtyStream()
        reporter = ProgressReporter(4, enabled=False, stream=stream)
        reporter.advance()
        reporter.close()
        assert stream.getvalue() == ""


class TestRendering:
    def test_rate_and_eta_from_fresh_points_only(self):
        stream = io.StringIO()
        clock = FakeClock()
        # 10 total, 6 resumed: after 2 fresh points in 1s the honest
        # rate is 2.0/s and 2 remain -> eta 1s.
        reporter = ProgressReporter(10, completed=6, enabled=True,
                                    stream=stream, clock=clock,
                                    interval=0.0)
        clock.tick(1.0)
        reporter.advance(2)
        line = stream.getvalue().splitlines()[-1]
        assert "sweep 8/10" in line
        assert "2.0 points/s" in line
        assert "eta 0:01" in line

    def test_no_rate_before_any_fresh_point(self):
        stream = io.StringIO()
        reporter = ProgressReporter(4, completed=2, enabled=True,
                                    stream=stream, clock=FakeClock())
        reporter.close()
        line = stream.getvalue().strip()
        assert line == "sweep 2/4"

    def test_rate_limited_emission(self):
        stream = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter(100, enabled=True, stream=stream,
                                    clock=clock, interval=0.5)
        for _ in range(10):
            reporter.advance()
            clock.tick(0.01)  # 10 points in 0.1s: one emission window
        assert len(stream.getvalue().splitlines()) == 1

    def test_final_point_always_draws(self):
        stream = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter(3, enabled=True, stream=stream,
                                    clock=clock, interval=10.0)
        reporter.advance(3)
        assert "sweep 3/3" in stream.getvalue()

    def test_tty_rewrites_in_place(self):
        stream = TtyStream()
        clock = FakeClock()
        reporter = ProgressReporter(2, enabled=True, stream=stream,
                                    clock=clock, interval=0.0)
        reporter.advance()
        clock.tick(1.0)
        reporter.advance()
        reporter.close()
        output = stream.getvalue()
        assert output.count("\r") >= 2
        assert output.endswith("\n")

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(1, enabled=True, stream=stream,
                                    clock=FakeClock())
        reporter.advance()
        reporter.close()
        once = stream.getvalue()
        reporter.close()
        assert stream.getvalue() == once


class TestEtaFormat:
    @pytest.mark.parametrize("seconds,rendered", [
        (0.0, "0:00"),
        (61.0, "1:01"),
        (3599.6, "1:00:00"),
        (3661.0, "1:01:01"),
    ])
    def test_rendering(self, seconds, rendered):
        assert _format_eta(seconds) == rendered


class TestEngineWiring:
    def test_run_sweep_progress_reports_to_stderr(self, capsys):
        spec = SweepSpec(
            base=FastSimulationConfig(
                n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
            ),
            grid={"bucket_size": (4,)}, backends=("fast",), seeds=2,
        )
        result = run_sweep(spec, jobs=1, progress=True)
        assert result.executed == 2
        captured = capsys.readouterr()
        assert "sweep 2/2" in captured.err
        assert "points/s" in captured.err
        assert "sweep 2/2" not in captured.out, (
            "progress must stay off the machine-readable stdout"
        )

    def test_run_sweep_progress_defaults_off_without_tty(self, capsys):
        spec = SweepSpec(
            base=FastSimulationConfig(
                n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
            ),
            grid={"bucket_size": (4,)}, backends=("fast",), seeds=1,
        )
        run_sweep(spec, jobs=1)
        assert "sweep 1/1" not in capsys.readouterr().err
