"""End-to-end fault recovery, driven by the chaos harness.

The load-bearing acceptance property: a sweep that suffered injected
faults — worker exceptions, hard crashes (``os._exit``), SIGKILLed
workers, hung points tripping the watchdog — and recovered within its
retry budget writes a store **byte-identical** to a fault-free serial
run. Everything else here exercises the edges around that property:
quarantine after budget exhaustion, fail-fast, resume-after-
quarantine, and graceful SIGTERM shutdown with no shared-memory
leaks.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import SweepExecutionError
from repro.sweeps import SweepSpec, SweepStore, run_sweep

#: Same tiny-but-multi-hop scale the determinism suite pins.
TINY = FastSimulationConfig(
    n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(base=TINY, grid={"bucket_size": (4, 8)},
                    backends=("fast",), seeds=2)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def write_plan(tmp_path, faults) -> Path:
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"faults": faults}))
    return path


def run_quiet(*args, **kwargs):
    """run_sweep with recovery/oversubscription warnings swallowed.

    Pool rebuilds and ``--jobs 2`` on small CI machines both warn by
    design; these tests assert on results and stores, not warnings.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return run_sweep(*args, **kwargs)


class TestSerialRecovery:
    def test_transient_exception_retried_to_success(self, tmp_path):
        spec = tiny_spec()
        target = spec.points()[0].point_id
        plan = write_plan(tmp_path, [
            {"point_id": target, "attempt": 0, "kind": "exception"},
        ])
        result = run_sweep(spec, jobs=1, fault_plan=plan,
                           retry_backoff=0.0)
        assert result.executed == len(spec)
        assert result.failures == []

    def test_recovered_run_is_byte_identical_to_clean(self, tmp_path):
        spec = tiny_spec()
        clean = tmp_path / "clean.json"
        run_sweep(spec, jobs=1, store_path=clean)
        plan = write_plan(tmp_path, [
            {"point_id": spec.points()[1].point_id, "attempt": 0,
             "kind": "exception"},
            {"point_id": spec.points()[2].point_id, "attempt": 0,
             "kind": "exception"},
            {"point_id": spec.points()[2].point_id, "attempt": 1,
             "kind": "exception"},
        ])
        faulted = tmp_path / "faulted.json"
        run_sweep(spec, jobs=1, store_path=faulted, fault_plan=plan,
                  retry_backoff=0.0)
        assert clean.read_bytes() == faulted.read_bytes()

    def test_exhausted_point_is_quarantined(self, tmp_path):
        spec = tiny_spec()
        target = spec.points()[0].point_id
        plan = write_plan(tmp_path, [
            {"point_id": target, "attempt": a, "kind": "exception",
             "message": "poison"} for a in range(3)
        ])
        store_path = tmp_path / "sweep.json"
        result = run_sweep(spec, jobs=1, store_path=store_path,
                           fault_plan=plan, max_retries=2,
                           retry_backoff=0.0)
        assert result.executed == len(spec) - 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.point_id == target
        assert failure.kind == "exception"
        assert failure.attempts == 3
        assert "poison" in failure.error

        document = json.loads(store_path.read_text())
        assert set(document["failures"]) == {target}
        record = document["failures"][target]
        assert record["kind"] == "exception"
        assert record["attempts"] == 3
        # The healthy points are all recorded alongside.
        assert len(document["points"]) == len(spec) - 1

    def test_fail_fast_aborts_on_first_exhausted_point(self, tmp_path):
        spec = tiny_spec()
        plan = write_plan(tmp_path, [
            {"point_id": spec.points()[0].point_id, "attempt": a,
             "kind": "exception"} for a in range(2)
        ])
        with pytest.raises(SweepExecutionError, match="fail-fast"):
            run_sweep(spec, jobs=1, fault_plan=plan, max_retries=1,
                      retry_backoff=0.0, keep_going=False)

    def test_quarantined_point_retries_on_resume(self, tmp_path):
        spec = tiny_spec()
        target = spec.points()[0].point_id
        plan = write_plan(tmp_path, [
            {"point_id": target, "attempt": a, "kind": "exception"}
            for a in range(3)
        ])
        store_path = tmp_path / "sweep.json"
        run_sweep(spec, jobs=1, store_path=store_path, fault_plan=plan,
                  retry_backoff=0.0)
        assert json.loads(store_path.read_text())["failures"]

        # Fault gone (fixed environment): the resume re-runs exactly
        # the quarantined point and clears its failure record...
        resumed = run_sweep(spec, jobs=1, store_path=store_path)
        assert resumed.executed == 1
        assert resumed.failures == []
        # ...leaving the store byte-identical to a never-faulted run.
        clean = tmp_path / "clean.json"
        run_sweep(spec, jobs=1, store_path=clean)
        assert store_path.read_bytes() == clean.read_bytes()


class TestProcessRecovery:
    def test_crash_kill_hang_exception_all_recover_byte_identical(
            self, tmp_path):
        # The acceptance oracle, with every fault kind at once: one
        # worker raises, one hard-exits, one is SIGKILLed mid-sweep,
        # one hangs until the watchdog recycles it — and the final
        # store is byte-for-byte the fault-free serial store.
        spec = tiny_spec()
        ids = [point.point_id for point in spec.points()]
        clean = tmp_path / "clean.json"
        run_sweep(spec, jobs=1, store_path=clean)
        plan = write_plan(tmp_path, [
            {"point_id": ids[0], "attempt": 0, "kind": "exception"},
            {"point_id": ids[1], "attempt": 0, "kind": "crash"},
            {"point_id": ids[2], "attempt": 0, "kind": "kill"},
            {"point_id": ids[3], "attempt": 0, "kind": "hang",
             "seconds": 60.0},
        ])
        faulted = tmp_path / "faulted.json"
        result = run_quiet(spec, jobs=2, store_path=faulted,
                           fault_plan=plan, point_timeout=10.0,
                           retry_backoff=0.0)
        assert result.executed == len(spec)
        assert result.failures == []
        assert clean.read_bytes() == faulted.read_bytes()

    def test_hung_point_exhausts_budget_and_quarantines(self, tmp_path):
        # A point that hangs on *every* attempt trips the watchdog
        # each time and ends up quarantined as a timeout; the healthy
        # point of the sweep still completes.
        spec = tiny_spec(grid={"bucket_size": (4,)}, seeds=2)
        hung_id = spec.points()[0].point_id
        plan = write_plan(tmp_path, [
            {"point_id": hung_id, "attempt": a, "kind": "hang",
             "seconds": 60.0} for a in range(2)
        ])
        store_path = tmp_path / "sweep.json"
        result = run_quiet(spec, jobs=2, store_path=store_path,
                           fault_plan=plan, point_timeout=3.0,
                           max_retries=1, retry_backoff=0.0)
        assert result.executed == len(spec) - 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.point_id == hung_id
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        record = json.loads(store_path.read_text())["failures"][hung_id]
        assert record["kind"] == "timeout"


SIGTERM_DRIVER = """
import sys
from repro.cli import main
sys.exit(main([
    "sweep", "--grid", "bucket_size=4", "--seeds", "12",
    "--nodes", "60", "--files", "8", "--jobs", "2",
    "--store", sys.argv[1], "--fault-plan", sys.argv[2],
]))
"""


class TestGracefulShutdown:
    def test_sigterm_leaves_resumable_store_and_no_shm_leak(
            self, tmp_path):
        store_path = tmp_path / "sweep.json"
        # Hang the first point forever (no --point-timeout): healthy
        # points stream into the store while the sweep provably cannot
        # finish, so the SIGTERM below always lands mid-run — no race
        # against a fast machine completing the sweep first.
        plan = write_plan(tmp_path, [
            {"point_id": "fast|bucket_size=4|r0", "attempt": 0,
             "kind": "hang", "seconds": 600.0},
        ])
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(
            filter(None, [str(Path(__file__).resolve().parents[2] / "src"),
                          os.environ.get("PYTHONPATH")])
        ))
        child = subprocess.Popen(
            [sys.executable, "-u", "-c", SIGTERM_DRIVER,
             str(store_path), str(plan)],
            env=env, cwd=tmp_path,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # Wait until at least one point is durably recorded, so
            # the signal provably lands mid-sweep.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if store_path.exists():
                    try:
                        if SweepStore.load(store_path).points:
                            break
                    except Exception:
                        pass
                if child.poll() is not None:
                    pytest.fail(
                        "sweep finished before SIGTERM could land:\n"
                        + child.communicate()[0]
                    )
                time.sleep(0.1)
            else:
                pytest.fail("no point completed within 120s")
            child.send_signal(signal.SIGTERM)
            output, _ = child.communicate(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()

        assert child.returncode == 128 + signal.SIGTERM, output
        assert "interrupted by SIGTERM" in output

        # The store is loadable and holds only complete records...
        store = SweepStore.load(store_path)
        assert store.points
        for record in store.points.values():
            assert record["metrics"]["chunks"] > 0
        # ...and a resume finishes the sweep from where it stopped.
        spec = store.spec
        resumed = run_sweep(spec, jobs=1, store_path=store_path)
        assert resumed.resumed == len(store.points)
        assert resumed.executed == len(spec) - len(store.points)

        # Graceful shutdown released every published segment: nothing
        # named for the dead child's pid survives in /dev/shm.
        shm = Path("/dev/shm")
        if shm.is_dir():
            leaked = [entry.name for entry in shm.iterdir()
                      if entry.name.startswith(f"repro_{child.pid}_")]
            assert leaked == []
