"""Tests for the deterministic fault-injection harness itself."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sweeps.chaos import (
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    maybe_inject,
)


def write_plan(tmp_path, faults):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"faults": faults}))
    return path


class TestFaultPlan:
    def test_parse_and_lookup(self, tmp_path):
        plan = FaultPlan.load(write_plan(tmp_path, [
            {"point_id": "fast||r0", "attempt": 1, "kind": "exception",
             "message": "boom"},
        ]))
        fault = plan.lookup("fast||r0", 1)
        assert fault == Fault(point_id="fast||r0", attempt=1,
                              kind="exception", message="boom")
        assert plan.lookup("fast||r0", 0) is None
        assert plan.lookup("fast||r1", 1) is None

    def test_unknown_kind_refused(self):
        with pytest.raises(ConfigurationError, match="meteor"):
            Fault(point_id="p", attempt=0, kind="meteor")

    def test_unknown_keys_refused(self):
        with pytest.raises(ConfigurationError, match="delay"):
            Fault.from_json({"point_id": "p", "kind": "hang",
                             "delay": 3})

    def test_missing_required_key_refused(self):
        with pytest.raises(ConfigurationError, match="missing"):
            Fault.from_json({"kind": "crash"})

    def test_duplicate_key_refused(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultPlan((
                Fault(point_id="p", attempt=0, kind="crash"),
                Fault(point_id="p", attempt=0, kind="hang"),
            ))

    def test_document_must_carry_faults_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"injects": []}))
        with pytest.raises(ConfigurationError, match="faults"):
            FaultPlan.load(path)

    def test_unreadable_plan_refused(self, tmp_path):
        path = tmp_path / "missing.json"
        with pytest.raises(ConfigurationError, match="cannot read"):
            FaultPlan.load(path)


class TestActivePlan:
    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert active_fault_plan() is None

    def test_env_names_the_plan(self, tmp_path, monkeypatch):
        path = write_plan(tmp_path, [
            {"point_id": "p", "kind": "exception"},
        ])
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        plan = active_fault_plan()
        assert plan is not None and len(plan) == 1

    def test_plan_cache_follows_mtime(self, tmp_path, monkeypatch):
        path = write_plan(tmp_path, [
            {"point_id": "p", "kind": "exception"},
        ])
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert len(active_fault_plan()) == 1
        import os
        path.write_text(json.dumps({"faults": [
            {"point_id": "p", "kind": "exception"},
            {"point_id": "q", "kind": "exception"},
        ]}))
        os.utime(path, ns=(0, 0))  # force a distinct mtime either way
        assert len(active_fault_plan()) == 2

    def test_dangling_env_path_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "gone.json"))
        with pytest.raises(ConfigurationError, match=FAULT_PLAN_ENV):
            active_fault_plan()


class TestMaybeInject:
    def test_exception_fault_fires_anywhere(self, tmp_path, monkeypatch):
        path = write_plan(tmp_path, [
            {"point_id": "p", "attempt": 0, "kind": "exception",
             "message": "boom"},
        ])
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        with pytest.raises(InjectedFault, match="boom.*point p.*attempt 0"):
            maybe_inject("p", 0)
        # Keyed by attempt: the retry sails through.
        maybe_inject("p", 1)
        maybe_inject("q", 0)

    @pytest.mark.parametrize("kind", ["crash", "kill", "hang"])
    def test_fatal_faults_skip_outside_workers(self, tmp_path,
                                               monkeypatch, kind):
        # This test process is not a spawned worker, so a fatal fault
        # must warn and skip — firing would kill/hang the test run.
        path = write_plan(tmp_path, [
            {"point_id": "p", "attempt": 0, "kind": kind,
             "seconds": 1.0},
        ])
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        with pytest.warns(RuntimeWarning, match="not a spawned worker"):
            maybe_inject("p", 0)
