"""Tests for SweepSpec expansion, seed derivation, and grid parsing."""

from __future__ import annotations

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import ConfigurationError
from repro.sweeps import (
    SweepSpec,
    parse_grid_arguments,
    parse_grid_value,
    replica_seed,
    replica_seeds,
    sweepable_fields,
)

TINY = FastSimulationConfig(
    n_nodes=40, bits=10, n_files=4, file_min=2, file_max=4
)


class TestSeedDerivation:
    def test_seeds_are_deterministic(self):
        assert replica_seeds(2022, 5) == replica_seeds(2022, 5)

    def test_seed_depends_only_on_entropy_and_replica(self):
        # Asking for more replicas never changes the earlier ones —
        # the property that makes parallel execution order-free.
        assert replica_seeds(2022, 10)[:3] == replica_seeds(2022, 3)
        for replica in range(8):
            assert replica_seed(2022, replica) == \
                replica_seeds(2022, 8)[replica]

    def test_different_entropy_different_seeds(self):
        assert replica_seeds(1, 4) != replica_seeds(2, 4)

    def test_negative_replica_rejected(self):
        with pytest.raises(ConfigurationError, match="replica"):
            replica_seed(2022, -1)


class TestSweepSpec:
    def test_expansion_count_and_order(self):
        spec = SweepSpec(
            base=TINY,
            grid={"bucket_size": (4, 8), "originator_share": (0.2, 1.0)},
            backends=("fast", "reference"),
            seeds=3,
        )
        points = spec.points()
        assert len(points) == len(spec) == 2 * 2 * 2 * 3
        assert [p.index for p in points] == list(range(len(points)))
        # Backend-major, then cells, then replicas.
        assert points[0].backend == "fast"
        assert points[len(points) // 2].backend == "reference"
        assert [p.replica for p in points[:3]] == [0, 1, 2]

    def test_replica_seeds_shared_across_cells_and_backends(self):
        spec = SweepSpec(
            base=TINY, grid={"bucket_size": (4, 8)},
            backends=("fast", "reference"), seeds=2,
        )
        seeds_by_replica: dict[int, set[int]] = {}
        for point in spec.points():
            seeds_by_replica.setdefault(
                point.replica, set()
            ).add(point.workload_seed)
        for replica, seeds in seeds_by_replica.items():
            assert len(seeds) == 1, (
                f"replica {replica} saw different seeds across cells"
            )

    def test_point_ids_unique_and_stable(self):
        spec = SweepSpec(
            base=TINY, grid={"bucket_size": (4, 8)}, seeds=2,
        )
        ids = [p.point_id for p in spec.points()]
        assert len(set(ids)) == len(ids)
        assert ids == [p.point_id for p in spec.points()]

    def test_point_config_binds_overrides_and_seed(self):
        spec = SweepSpec(base=TINY, grid={"bucket_size": (8,)}, seeds=1)
        point = spec.points()[0]
        config = point.config(spec.base)
        assert config.bucket_size == 8
        assert config.workload_seed == point.workload_seed
        assert config.n_nodes == TINY.n_nodes

    def test_empty_grid_is_one_cell(self):
        spec = SweepSpec(base=TINY, seeds=4)
        assert spec.cells() == [()]
        assert len(spec.points()) == 4

    def test_scalar_grid_value_normalized(self):
        spec = SweepSpec(base=TINY, grid={"bucket_size": 8})
        assert spec.grid == (("bucket_size", (8,)),)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="sweepable fields"):
            SweepSpec(base=TINY, grid={"bogus_field": (1,)})

    def test_workload_seed_reserved(self):
        with pytest.raises(ConfigurationError, match="workload_seed"):
            SweepSpec(base=TINY, grid={"workload_seed": (1, 2)})

    def test_bad_value_fails_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="pricing"):
            SweepSpec(base=TINY, grid={"pricing": ("bogus",)})

    def test_needs_backend_and_seeds(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SweepSpec(base=TINY, backends=())
        with pytest.raises(ConfigurationError, match="seeds"):
            SweepSpec(base=TINY, seeds=0)

    def test_json_round_trip(self):
        spec = SweepSpec(
            base=TINY,
            grid={"bucket_size": (4, 8), "caching": (False, True)},
            backends=("fast",),
            seeds=3,
            seed_entropy=99,
        )
        assert SweepSpec.from_json(spec.to_json()) == spec


class TestGridParsing:
    def test_typed_values(self):
        assert parse_grid_value("bucket_size", "4,8,16") == (4, 8, 16)
        assert parse_grid_value("originator_share", "0.2,1.0") == (0.2, 1.0)
        assert parse_grid_value("caching", "true,false") == (True, False)
        assert parse_grid_value("pricing", "xor,flat") == ("xor", "flat")
        assert parse_grid_value("bucket_zero", "none,8") == (None, 8)

    def test_unknown_field(self):
        with pytest.raises(ConfigurationError, match="sweepable fields"):
            parse_grid_value("bogus", "1")

    def test_workload_seed_hint(self):
        with pytest.raises(ConfigurationError, match="--seeds"):
            parse_grid_value("workload_seed", "1,2")

    def test_unparsable_value(self):
        with pytest.raises(ConfigurationError, match="bucket_size"):
            parse_grid_value("bucket_size", "four")

    def test_arguments_parsing(self):
        grid = parse_grid_arguments(
            ["bucket_size=4,8", "originator_share=0.2"]
        )
        assert grid == {
            "bucket_size": (4, 8), "originator_share": (0.2,)
        }

    def test_malformed_argument(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_grid_arguments(["bucket_size"])

    def test_duplicate_field(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            parse_grid_arguments(["bucket_size=4", "bucket_size=8"])

    def test_sweepable_fields_exclude_reserved(self):
        fields = sweepable_fields()
        assert "workload_seed" not in fields
        assert "bucket_size" in fields and fields["bucket_size"] is int
