"""The scenario axis as a first-class sweep dimension.

Covers the acceptance criteria of the scenario-layer refactor: spec
expansion and JSON/store round-trips of the ``scenarios`` axis, a
composed-scenario sweep running end-to-end with ``--jobs 2`` byte-
identical to serial, and — via ``REPRO_EPOCH_TABLE_LOG`` — the proof
that per-epoch storer tables under topology change hit the delta
cache instead of being recomputed per replica (strictly fewer
patches/rebuilds than epoch-table resolutions).
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from collections import Counter

import numpy as np
import pytest

from repro.backends.config import FastSimulationConfig
from repro.backends.fast import clear_caches
from repro.cli import main
from repro.errors import ConfigurationError
from repro.perf.table_cache import EPOCH_TABLE_LOG_ENV
from repro.sweeps import SweepSpec, run_sweep

COMPOSED = "churn:rate=0.2,recompute=true+caching:size=64"

BASE = FastSimulationConfig(
    n_nodes=120, bits=12, bucket_size=4, n_files=40,
    file_min=4, file_max=8, batch_files=8, catalog_size=30,
    originator_share=0.5,
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


class TestSpecAxis:
    def test_scenarios_cross_the_grid(self):
        spec = SweepSpec(
            base=BASE,
            grid={"bucket_size": (4, 8)},
            scenarios=("churn:rate=0.1", COMPOSED),
            seeds=2,
        )
        assert len(spec) == 2 * 2 * 2
        cells = spec.cells()
        assert len(cells) == 4
        assert all(cell[-1][0] == "scenario" for cell in cells)
        # Scenario expands innermost: grid value changes slowest.
        assert [dict(cell)["scenario"] for cell in cells[:2]] == [
            "churn:rate=0.1", COMPOSED,
        ]
        point = spec.points()[0]
        assert "scenario=" in point.point_id

    def test_bad_scenario_fails_at_spec_build(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            SweepSpec(base=BASE, scenarios=("warp:factor=9",))

    def test_scenario_axis_and_grid_field_collide(self):
        with pytest.raises(ConfigurationError, match="twice"):
            SweepSpec(
                base=BASE,
                grid={"scenario": ("churn:rate=0.1",)},
                scenarios=(COMPOSED,),
            )

    def test_json_round_trip(self):
        spec = SweepSpec(base=BASE, scenarios=(COMPOSED,), seeds=2)
        assert SweepSpec.from_json(spec.to_json()) == spec
        # Scenario-free specs serialize without the key, keeping old
        # stores byte-comparable.
        assert "scenarios" not in SweepSpec(base=BASE).to_json()


class TestComposedSweep:
    def _spec(self) -> SweepSpec:
        return SweepSpec(
            base=BASE, scenarios=(COMPOSED,), seeds=2,
            backends=("fast",),
        )

    def test_parallel_is_byte_identical_to_serial(self, tmp_path):
        serial_store = tmp_path / "serial.json"
        parallel_store = tmp_path / "parallel.json"
        serial = run_sweep(self._spec(), jobs=1, store_path=serial_store)
        clear_caches()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = run_sweep(
                self._spec(), jobs=2, store_path=parallel_store
            )
        assert serial.executed == parallel.executed == 2
        assert serial_store.read_bytes() == parallel_store.read_bytes()
        for left, right in zip(serial.records, parallel.records):
            assert left == right
        summary = parallel.summaries[0]
        assert dict(summary.overrides)["scenario"] == COMPOSED
        assert summary.metrics["cache_hits"].mean > 0
        assert summary.metrics["availability"].mean < 1.0

    def test_store_resumes_scenario_points(self, tmp_path):
        store = tmp_path / "sweep.json"
        first = run_sweep(self._spec(), jobs=1, store_path=store)
        assert first.executed == 2
        snapshot = store.read_bytes()
        resumed = run_sweep(self._spec(), jobs=1, store_path=store)
        assert resumed.executed == 0
        assert resumed.resumed == 2
        assert store.read_bytes() == snapshot

    def test_epoch_tables_hit_the_delta_cache(self, tmp_path,
                                              monkeypatch):
        """Across seed replicas, epoch tables resolve mostly as hits.

        5 epochs x 3 replicas request 15 epoch tables; only the first
        replica's 5 may be computed (as delta patches), the other 10
        must be cache hits — the instrumented log proves it per
        worker process, without timing anything.
        """
        log = tmp_path / "epoch-tables.log"
        monkeypatch.setenv(EPOCH_TABLE_LOG_ENV, str(log))
        spec = SweepSpec(
            base=BASE, scenarios=(COMPOSED,), seeds=3,
            backends=("fast",),
        )
        result = run_sweep(spec, jobs=1)
        assert result.executed == 3
        lines = [line.split() for line in log.read_text().splitlines()]
        storer = Counter(
            event for fingerprint, _, event in lines
            if not fingerprint.startswith("coded:")
        )
        resolutions = storer["patch"] + storer["rebuild"] + storer["hit"]
        computed = storer["patch"] + storer["rebuild"]
        assert resolutions == 15
        assert computed == 5
        assert storer["hit"] == 10
        assert computed < resolutions, (
            "the delta cache must beat recompute-per-replica"
        )
        # The coded-matrix patches amortize identically: the matrix is
        # scanned once per epoch on the first replica, the later
        # replicas re-apply the cached sparse patch, and every applied
        # patch is reverted on epoch exit (pristine-matrix guarantee).
        coded = Counter(
            event for fingerprint, _, event in lines
            if fingerprint.startswith("coded:")
        )
        assert coded["patch"] + coded["rebuild"] == 5
        assert coded["hit"] == 10
        assert coded["revert"] == 15

    def test_parallel_workers_also_amortize(self, tmp_path, monkeypatch):
        """Once-per-machine epoch work: the parent precomputes, the
        pool installs.

        The sweep parent replays the schedule once (5 storer patches +
        5 coded-matrix scans, all under its own pid), publishes the
        artifacts over shared memory, and every worker installs them
        (``shared`` events) and resolves its epochs purely as cache
        hits — no worker ever patches a storer table or scans the
        coded matrix itself.
        """
        log = tmp_path / "epoch-tables.log"
        monkeypatch.setenv(EPOCH_TABLE_LOG_ENV, str(log))
        spec = SweepSpec(
            base=BASE, scenarios=(COMPOSED,), seeds=4,
            backends=("fast",),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_sweep(spec, jobs=2)
        assert result.executed == 4
        parent = str(os.getpid())
        per_pid: dict[str, Counter] = {}
        for line in log.read_text().splitlines():
            fingerprint, pid, event = line.split()
            kind = ("coded" if fingerprint.startswith("coded:")
                    else "storer")
            per_pid.setdefault(pid, Counter())[f"{kind}:{event}"] += 1
        assert parent in per_pid
        assert len(per_pid) >= 2, "expected at least one pool worker"
        for pid, events in per_pid.items():
            computed = (
                events["storer:patch"] + events["storer:rebuild"]
                + events["coded:patch"] + events["coded:rebuild"]
            )
            if pid == parent:
                # The one precompute pass: 5 epochs' storer patches
                # plus 5 coded-matrix scans, and nothing else.
                assert computed == 10, (pid, events)
                assert events["storer:hit"] == 0, (pid, events)
            else:
                assert computed == 0, (pid, events)
                assert events["storer:shared"] == 5, (pid, events)
                assert events["coded:shared"] == 5, (pid, events)
                assert events["storer:hit"] > 0, (pid, events)
                assert events["coded:hit"] > 0, (pid, events)


class TestTraceReplayAxis:
    """``--scenario trace:path=...`` crossing the sweep grid."""

    @pytest.fixture()
    def trace_path(self, tmp_path):
        from repro.scenarios.trace import record_dynamics

        source = dataclasses.replace(BASE, scenario=COMPOSED)
        path = tmp_path / "dynamics.json"
        record_dynamics(
            source.scenario_stack(), source.scenario_context()
        ).save(path)
        return path

    def test_trace_axis_parallel_is_byte_identical(self, tmp_path,
                                                   trace_path):
        spec = SweepSpec(
            base=BASE, scenarios=(f"trace:path={trace_path}",),
            grid={"bucket_size": (4, 8)}, seeds=2, backends=("fast",),
        )
        serial_store = tmp_path / "serial.json"
        parallel_store = tmp_path / "parallel.json"
        serial = run_sweep(spec, jobs=1, store_path=serial_store)
        clear_caches()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = run_sweep(spec, jobs=2, store_path=parallel_store)
        assert serial.executed == parallel.executed == 4
        assert serial_store.read_bytes() == parallel_store.read_bytes()

    def test_trace_axis_metrics_equal_direct_scenario(self, trace_path):
        """Replaying the recording sweeps to the same numbers as the
        source scenario string — per point, not just on average."""
        direct = run_sweep(SweepSpec(
            base=BASE, scenarios=(COMPOSED,), seeds=2,
            backends=("fast",),
        ), jobs=1)
        clear_caches()
        replayed = run_sweep(SweepSpec(
            base=BASE, scenarios=(f"trace:path={trace_path}",),
            seeds=2, backends=("fast",),
        ), jobs=1)
        assert len(direct.records) == len(replayed.records) == 2
        for left, right in zip(direct.records, replayed.records):
            assert left["replica"] == right["replica"]
            assert left["metrics"] == right["metrics"]

    def test_missing_trace_fails_at_spec_build(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            SweepSpec(
                base=BASE,
                scenarios=(f"trace:path={tmp_path / 'gone.json'}",),
            )


class TestScenarioCLI:
    def test_sweep_scenario_flag_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "cli.json"
        code = main([
            "sweep", "--scenario", COMPOSED, "--seeds", "2",
            "--files", "40", "--nodes", "120",
            "--store", str(store),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 scenario(s)" in out
        assert f"scenario={COMPOSED}" in out
        document = json.loads(store.read_text())
        assert document["spec"]["scenarios"] == [COMPOSED]
        points = document["points"]
        assert all(
            point["overrides"]["scenario"] == COMPOSED
            for point in points.values()
        )

    def test_bad_scenario_flag_fails_with_grammar(self, capsys):
        with pytest.raises(ConfigurationError, match="available"):
            main([
                "sweep", "--scenario", "warp:factor=9",
                "--files", "40", "--nodes", "120",
            ])


class TestScenarioDeterminism:
    def test_scenario_runs_are_replayable(self):
        config = FastSimulationConfig(
            n_nodes=120, bits=12, n_files=40, batch_files=8,
            catalog_size=30, scenario=COMPOSED,
        )
        from repro.backends import run_simulation

        first = run_simulation(config)
        clear_caches()
        second = run_simulation(config)
        assert np.array_equal(first.forwarded, second.forwarded)
        assert np.array_equal(first.income, second.income)
        assert first.hop_histogram == second.hop_histogram
