"""End-to-end distributed sweep execution.

The acceptance property of the distributed executor: a sweep sharded
across ``sweep-work`` host subprocesses — healthy, or with a host
SIGKILLed mid-run by the ``kill-host`` chaos fault — produces a
coordinator store **byte-identical** to a fault-free serial run, and
the per-host shard stores merge back to the same bytes. The
build-once guarantee extends per machine: every host builds each
unique topology exactly once, however many local jobs it runs.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.backends.config import FastSimulationConfig
from repro.backends.fast import TABLE_BUILD_LOG_ENV, clear_caches
from repro.errors import ConfigurationError
from repro.sweeps import (
    DistributedExecutor,
    SweepSpec,
    SweepStore,
    run_sweep,
)

TINY = FastSimulationConfig(
    n_nodes=60, bits=10, n_files=8, file_min=3, file_max=6
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(base=TINY, grid={"bucket_size": (4, 8)},
                    backends=("fast",), seeds=2)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def run_quiet(*args, **kwargs):
    """run_sweep with oversubscription/restart warnings swallowed."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return run_sweep(*args, **kwargs)


def write_plan(tmp_path, faults) -> Path:
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"faults": faults}))
    return path


class TestDistributedByteIdentity:
    def test_two_workers_match_serial_store(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)

        dist = tmp_path / "dist.json"
        result = run_quiet(spec, workers=2, jobs=1, store_path=dist,
                           shard_dir=tmp_path / "shards")
        assert result.executed == len(spec)
        assert result.failures == []
        assert serial.read_bytes() == dist.read_bytes()

    def test_shards_merge_to_the_serial_bytes(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)

        shard_dir = tmp_path / "shards"
        run_quiet(spec, workers=2, jobs=1,
                  store_path=tmp_path / "dist.json", shard_dir=shard_dir)
        shards = sorted(shard_dir.glob("host-*.json"))
        assert len(shards) == 2
        merged = SweepStore.merge(
            [SweepStore.load(path) for path in shards],
            path=tmp_path / "merged.json",
        )
        merged.save()
        # Shard provenance differs from a store written by this
        # process only in which git/python snapshot recorded it —
        # identical here, so the whole file matches.
        assert (tmp_path / "merged.json").read_bytes() \
            == serial.read_bytes()

    def test_results_and_summaries_match_serial(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec, jobs=1)
        dist = run_quiet(spec, workers=2, jobs=1,
                         shard_dir=tmp_path / "shards")
        assert dist.records == serial.records
        assert [s.metrics for s in dist.summaries] \
            == [s.metrics for s in serial.summaries]


class TestDistributedFaults:
    def test_killed_host_recovers_byte_identical(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)

        plan = write_plan(tmp_path, [
            {"point_id": spec.points()[1].point_id, "attempt": 0,
             "kind": "kill-host"},
        ])
        dist = tmp_path / "dist.json"
        result = run_quiet(spec, workers=2, jobs=1, store_path=dist,
                           shard_dir=tmp_path / "shards",
                           fault_plan=plan, lease_timeout=30.0)
        assert result.failures == []
        assert serial.read_bytes() == dist.read_bytes()

    def test_transient_exception_is_retried_across_the_queue(
            self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.json"
        run_sweep(spec, jobs=1, store_path=serial)

        plan = write_plan(tmp_path, [
            {"point_id": spec.points()[0].point_id, "attempt": 0,
             "kind": "exception"},
        ])
        dist = tmp_path / "dist.json"
        result = run_quiet(spec, workers=2, jobs=1, store_path=dist,
                           shard_dir=tmp_path / "shards",
                           fault_plan=plan)
        assert result.failures == []
        assert serial.read_bytes() == dist.read_bytes()

    def test_poisoned_point_quarantines_with_global_attempts(
            self, tmp_path):
        spec = tiny_spec()
        target = spec.points()[0].point_id
        plan = write_plan(tmp_path, [
            {"point_id": target, "attempt": a, "kind": "exception",
             "message": "poison"} for a in range(3)
        ])
        dist = tmp_path / "dist.json"
        result = run_quiet(spec, workers=2, jobs=1, store_path=dist,
                           shard_dir=tmp_path / "shards",
                           fault_plan=plan, max_retries=2)
        assert result.executed == len(spec) - 1
        assert len(result.failures) == 1
        assert result.failures[0].point_id == target
        assert result.failures[0].attempts == 3
        document = json.loads(dist.read_text())
        assert document["failures"][target]["attempts"] == 3


class TestBuildOncePerHost:
    def test_each_host_builds_every_topology_exactly_once(
            self, tmp_path, monkeypatch):
        """2 hosts x 2 local jobs x 2 topologies -> 2 builds per host."""
        spec = tiny_spec()
        log = tmp_path / "builds.log"
        monkeypatch.setenv(TABLE_BUILD_LOG_ENV, str(log))
        clear_caches()
        result = run_quiet(spec, workers=2, jobs=2,
                           shard_dir=tmp_path / "shards")
        assert result.executed == len(spec)
        lines = log.read_text().splitlines()
        builders: dict[str, set[str]] = {}
        for line in lines:
            fingerprint, pid = line.split()[:2]
            builders.setdefault(fingerprint, set()).add(pid)
        # Two unique topologies (bucket_size 4 and 8); each built by
        # at most one process per host that touched it, and never
        # twice by the same process.
        assert len(builders) == 2
        assert len(lines) == sum(len(pids) for pids in builders.values())
        for fingerprint, pids in builders.items():
            assert 1 <= len(pids) <= 2, (
                f"{fingerprint} built by {len(pids)} processes: "
                f"more than one build per host"
            )


class TestDistributedExecutorEdges:
    def test_requires_matching_base_config(self, tmp_path):
        spec = tiny_spec()
        executor = DistributedExecutor(2, spec=spec)
        other = FastSimulationConfig(n_nodes=80)
        with pytest.raises(ConfigurationError, match="spec"):
            executor.run(other, spec.points())

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            DistributedExecutor(0, spec=tiny_spec())

    def test_empty_point_list_is_a_noop(self):
        executor = DistributedExecutor(2, spec=tiny_spec())
        assert executor.run(TINY, []) == []

    def test_make_executor_requires_spec_for_workers(self):
        from repro.sweeps import make_executor

        with pytest.raises(ConfigurationError, match="spec"):
            make_executor(1, workers=2)


class TestServeWorkSubprocesses:
    def test_multi_machine_protocol_end_to_end(self, tmp_path):
        """sweep-serve + two sweep-work processes == serial bytes."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]]
                              if env.get("PYTHONPATH") else [])
        )
        spec_args = ["--grid", "bucket_size=4,8", "--seeds", "2",
                     "--backend", "fast", "--nodes", "60", "--files", "8"]
        # The spec the CLI flags above expand to; its serial store is
        # the byte-identity reference.
        cli_spec = SweepSpec(
            base=FastSimulationConfig(n_nodes=60, n_files=8),
            grid={"bucket_size": (4, 8)}, backends=("fast",), seeds=2,
        )
        serial = tmp_path / "serial.json"
        run_sweep(cli_spec, jobs=1, store_path=serial)

        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep-serve",
             *spec_args, "--port", "0",
             "--store", str(tmp_path / "main.json")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=tmp_path,
        )
        url = None
        try:
            for _ in range(100):
                line = serve.stdout.readline()
                match = re.search(r"(http://[\d.]+:\d+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, "sweep-serve never printed its URL"
            hosts = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "sweep-work",
                     "--queue", url, "--worker-id", f"host-{tag}",
                     "--store", str(tmp_path / f"shard-{tag}.json")],
                    stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                    text=True, env=env, cwd=tmp_path,
                )
                for tag in ("a", "b")
            ]
            for host in hosts:
                output, _ = host.communicate(timeout=300)
                assert host.returncode == 0, output
            assert serve.wait(timeout=60) == 0
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.wait()

        main_store = tmp_path / "main.json"
        assert main_store.read_bytes() == serial.read_bytes()
        shards = [SweepStore.load(tmp_path / f"shard-{tag}.json")
                  for tag in ("a", "b")]
        merged = SweepStore.merge(shards, path=tmp_path / "merged.json")
        merged.save()
        assert (tmp_path / "merged.json").read_bytes() \
            == serial.read_bytes()
