"""Unit tests for k-buckets (repro.kademlia.buckets)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, OverlayError
from repro.kademlia.buckets import (
    BucketLimits,
    KBucket,
    KADEMLIA_BUCKET_SIZE,
    NEIGHBORHOOD_MIN,
    SWARM_BUCKET_SIZE,
)


class TestConstants:
    def test_paper_defaults(self):
        assert SWARM_BUCKET_SIZE == 4
        assert KADEMLIA_BUCKET_SIZE == 20
        assert NEIGHBORHOOD_MIN == 4


class TestBucketLimits:
    def test_default_capacity(self):
        limits = BucketLimits()
        assert limits.capacity(0) == SWARM_BUCKET_SIZE
        assert limits.capacity(13) == SWARM_BUCKET_SIZE

    def test_overrides(self):
        limits = BucketLimits(default=4, overrides={0: 20, 3: 8})
        assert limits.capacity(0) == 20
        assert limits.capacity(3) == 8
        assert limits.capacity(1) == 4

    def test_uniform_factory(self):
        assert BucketLimits.uniform(20).capacity(5) == 20

    def test_bucket_zero_factory(self):
        limits = BucketLimits.with_bucket_zero(4, 16)
        assert limits.capacity(0) == 16
        assert limits.capacity(1) == 4

    @pytest.mark.parametrize("default", [0, -3, 1.5, True])
    def test_bad_default_rejected(self, default):
        with pytest.raises(ConfigurationError):
            BucketLimits(default=default)

    def test_bad_override_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketLimits(overrides={0: 0})

    def test_negative_override_index_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketLimits(overrides={-1: 5})


class TestKBucketConstruction:
    def test_initial_state(self):
        bucket = KBucket(index=2, capacity=4)
        assert len(bucket) == 0
        assert not bucket.is_full
        assert bucket.peers == ()

    def test_unbounded_capacity(self):
        bucket = KBucket(index=0, capacity=None)
        for address in range(1000):
            assert bucket.add(address)
        assert not bucket.is_full

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(ConfigurationError):
            KBucket(index=0, capacity=capacity)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            KBucket(index=-1, capacity=4)


class TestKBucketMutation:
    def test_add_preserves_insertion_order(self):
        bucket = KBucket(index=0, capacity=4)
        for address in (9, 3, 7):
            bucket.add(address)
        assert bucket.peers == (9, 3, 7)

    def test_duplicate_add_returns_false(self):
        bucket = KBucket(index=0, capacity=4)
        assert bucket.add(5)
        assert not bucket.add(5)
        assert len(bucket) == 1

    def test_full_bucket_rejects(self):
        bucket = KBucket(index=0, capacity=2)
        assert bucket.add(1)
        assert bucket.add(2)
        assert bucket.is_full
        assert not bucket.add(3)
        assert 3 not in bucket

    def test_remove(self):
        bucket = KBucket(index=0, capacity=4)
        bucket.add(1)
        bucket.remove(1)
        assert 1 not in bucket
        assert len(bucket) == 0

    def test_remove_absent_raises(self):
        with pytest.raises(OverlayError, match="not in bucket"):
            KBucket(index=0, capacity=4).remove(1)

    def test_replace_preserves_position(self):
        bucket = KBucket(index=0, capacity=4)
        for address in (1, 2, 3):
            bucket.add(address)
        bucket.replace(2, 9)
        assert bucket.peers == (1, 9, 3)

    def test_replace_missing_old_raises(self):
        bucket = KBucket(index=0, capacity=4)
        bucket.add(1)
        with pytest.raises(OverlayError):
            bucket.replace(2, 9)

    def test_replace_duplicate_new_raises(self):
        bucket = KBucket(index=0, capacity=4)
        bucket.add(1)
        bucket.add(2)
        with pytest.raises(OverlayError, match="already"):
            bucket.replace(1, 2)

    def test_extend_stops_at_capacity(self):
        bucket = KBucket(index=0, capacity=3)
        added = bucket.extend([1, 2, 3, 4, 5])
        assert added == 3
        assert bucket.peers == (1, 2, 3)

    def test_extend_skips_duplicates(self):
        bucket = KBucket(index=0, capacity=5)
        bucket.add(1)
        assert bucket.extend([1, 2, 2, 3]) == 2

    def test_membership_and_iteration(self):
        bucket = KBucket(index=0, capacity=4)
        bucket.add(8)
        assert 8 in bucket
        assert list(bucket) == [8]
