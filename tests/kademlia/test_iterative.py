"""Unit tests for iterative Kademlia lookups (repro.kademlia.iterative)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.kademlia.iterative import IterativeLookup
from repro.kademlia.routing import Router


class TestConstruction:
    def test_bad_alpha_rejected(self, medium_overlay):
        with pytest.raises(ConfigurationError):
            IterativeLookup(medium_overlay, alpha=0)

    def test_bad_k_rejected(self, medium_overlay):
        with pytest.raises(ConfigurationError):
            IterativeLookup(medium_overlay, k=0)


class TestLookupCorrectness:
    def test_finds_the_globally_closest_node(self, medium_overlay, rng):
        lookup = IterativeLookup(medium_overlay)
        for _ in range(150):
            requester = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            result = lookup.lookup(requester, target)
            assert result.found == medium_overlay.closest_node(target)

    def test_agrees_with_forwarding_router(self, medium_overlay, rng):
        lookup = IterativeLookup(medium_overlay)
        router = Router(medium_overlay)
        for _ in range(100):
            requester = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            assert (
                lookup.lookup(requester, target).found
                == router.route(requester, target).storer
            )

    def test_exhaustive_small_overlay(self, small_overlay):
        lookup = IterativeLookup(small_overlay, k=8)
        for requester in small_overlay.addresses[:10]:
            for target in range(0, small_overlay.space.size, 3):
                result = lookup.lookup(requester, target)
                assert result.found == small_overlay.closest_node(target)

    def test_unknown_requester_rejected(self, medium_overlay):
        missing = next(
            a for a in range(medium_overlay.space.size)
            if a not in medium_overlay
        )
        with pytest.raises(RoutingError):
            IterativeLookup(medium_overlay).lookup(missing, 0)


class TestPrivacyTelemetry:
    def test_contacted_nodes_are_distinct_overlay_members(
        self, medium_overlay, rng
    ):
        lookup = IterativeLookup(medium_overlay)
        requester = int(rng.choice(medium_overlay.address_array()))
        result = lookup.lookup(requester, 1234)
        assert len(set(result.contacted)) == len(result.contacted)
        for node in result.contacted:
            assert node in medium_overlay
            assert node != requester

    def test_exposure_exceeds_forwarding(self, medium_overlay, rng):
        # Iterative lookups reveal the requester to several nodes;
        # forwarding reveals it to exactly one.
        lookup = IterativeLookup(medium_overlay)
        exposures = []
        for _ in range(50):
            requester = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            exposures.append(
                lookup.lookup(requester, target).identity_exposure
            )
        assert float(np.mean(exposures)) > 1.0

    def test_round_trips_positive_for_remote_targets(self, medium_overlay):
        lookup = IterativeLookup(medium_overlay)
        requester = medium_overlay.addresses[0]
        target = requester ^ (medium_overlay.space.size - 1)
        result = lookup.lookup(requester, target)
        assert result.round_trips >= 1

    def test_alpha_bounds_contacts_per_round(self, medium_overlay, rng):
        lookup = IterativeLookup(medium_overlay, alpha=2)
        requester = int(rng.choice(medium_overlay.address_array()))
        result = lookup.lookup(requester, 999)
        # Can't contact more than alpha * rounds + final top-k flush.
        assert len(result.contacted) <= 2 * result.round_trips + lookup.k
