"""Unit tests for forwarding-Kademlia routing (repro.kademlia.routing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.kademlia.routing import Route, Router, RoutingStats


class TestRoute:
    def test_properties(self):
        route = Route(target=9, path=(1, 2, 3))
        assert route.originator == 1
        assert route.storer == 3
        assert route.hops == 2
        assert route.first_hop == 2
        assert route.forwarders == (2, 3)

    def test_local_hit(self):
        route = Route(target=9, path=(1,))
        assert route.hops == 0
        assert route.first_hop is None
        assert route.forwarders == ()


class TestRouterCorrectness:
    def test_routes_reach_the_storer(self, medium_overlay, rng):
        router = Router(medium_overlay, strict=True)
        for _ in range(300):
            origin = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            route = router.route(origin, target)
            assert route.storer == medium_overlay.closest_node(target)

    def test_paths_make_strict_xor_progress(self, medium_overlay, rng):
        router = Router(medium_overlay)
        for _ in range(100):
            origin = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            route = router.route(origin, target)
            distances = [node ^ target for node in route.path]
            assert distances == sorted(distances, reverse=True)
            assert len(set(route.path)) == len(route.path)

    def test_hops_bounded_by_bits(self, medium_overlay, rng):
        router = Router(medium_overlay)
        for _ in range(100):
            origin = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            assert router.route(origin, target).hops <= medium_overlay.space.bits

    def test_wide_buckets_give_shorter_routes(self, medium_overlay,
                                              wide_overlay, rng):
        # k=20 should dominate k=4 on mean hops (the paper's Table I
        # bandwidth effect).
        narrow = Router(medium_overlay)
        wide = Router(wide_overlay)
        for _ in range(400):
            target = int(rng.integers(0, medium_overlay.space.size))
            origin_narrow = int(rng.choice(medium_overlay.address_array()))
            origin_wide = int(rng.choice(wide_overlay.address_array()))
            narrow.route(origin_narrow, target)
            wide.route(origin_wide, target)
        assert wide.stats.mean_hops < narrow.stats.mean_hops

    def test_route_to_own_address_is_local(self, medium_overlay):
        origin = medium_overlay.addresses[0]
        route = Router(medium_overlay).route(origin, origin)
        assert route.hops == 0
        assert route.path == (origin,)

    def test_unknown_origin_raises(self, medium_overlay):
        missing = next(
            a for a in range(medium_overlay.space.size)
            if a not in medium_overlay
        )
        with pytest.raises(RoutingError, match="not an overlay node"):
            Router(medium_overlay).route(missing, 0)

    def test_exhaustive_small_overlay(self, small_overlay):
        router = Router(small_overlay, strict=True)
        for origin in small_overlay.addresses:
            for target in range(small_overlay.space.size):
                route = router.route(origin, target)
                assert route.storer == small_overlay.closest_node(target)

    def test_route_many(self, medium_overlay):
        origin = medium_overlay.addresses[0]
        routes = Router(medium_overlay).route_many(origin, [1, 2, 3])
        assert len(routes) == 3
        assert all(route.originator == origin for route in routes)


class TestFallback:
    def test_no_fallback_on_paper_style_overlays(self, medium_overlay, rng):
        router = Router(medium_overlay)
        for _ in range(500):
            origin = int(rng.choice(medium_overlay.address_array()))
            target = int(rng.integers(0, medium_overlay.space.size))
            router.route(origin, target)
        assert router.stats.fallback_hops == 0

    def test_asymmetric_overlay_may_stall_strictly(self):
        # Without the symmetric neighborhood, strict routing must
        # either succeed or raise - never silently misroute.
        overlay = Overlay.build(
            OverlayConfig(n_nodes=100, bits=12, seed=5,
                          symmetric_neighborhood=False)
        )
        router = Router(overlay, strict=True)
        rng = np.random.default_rng(0)
        for _ in range(300):
            origin = int(rng.choice(overlay.address_array()))
            target = int(rng.integers(0, overlay.space.size))
            try:
                route = router.route(origin, target)
            except RoutingError:
                continue
            assert route.storer == overlay.closest_node(target)

    def test_fallback_reaches_storer_non_strict(self):
        overlay = Overlay.build(
            OverlayConfig(n_nodes=100, bits=12, seed=5,
                          symmetric_neighborhood=False)
        )
        router = Router(overlay)
        rng = np.random.default_rng(0)
        for _ in range(300):
            origin = int(rng.choice(overlay.address_array()))
            target = int(rng.integers(0, overlay.space.size))
            route = router.route(origin, target)
            assert route.storer == overlay.closest_node(target)


class TestRoutingStats:
    def test_record_accumulates(self):
        stats = RoutingStats()
        stats.record(Route(target=1, path=(1, 2, 3)))
        stats.record(Route(target=2, path=(5,)))
        stats.record(Route(target=3, path=(1, 9), fallback=True))
        assert stats.routes == 3
        assert stats.total_hops == 3
        assert stats.local_hits == 1
        assert stats.fallback_hops == 1
        assert stats.hop_histogram == {2: 1, 0: 1, 1: 1}
        assert stats.mean_hops == 1.0

    def test_empty_mean_is_zero(self):
        assert RoutingStats().mean_hops == 0.0

    def test_merge(self):
        a = RoutingStats()
        a.record(Route(target=1, path=(1, 2)))
        b = RoutingStats()
        b.record(Route(target=2, path=(1, 2, 3)))
        b.record(Route(target=3, path=(4,)))
        merged = a.merge(b)
        assert merged.routes == 3
        assert merged.total_hops == 3
        assert merged.hop_histogram == {1: 1, 2: 1, 0: 1}
        # Inputs untouched.
        assert a.routes == 1 and b.routes == 2
