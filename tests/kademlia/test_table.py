"""Unit tests for routing tables (repro.kademlia.table)."""

from __future__ import annotations

import pytest

from repro.errors import AddressError, ConfigurationError, OverlayError
from repro.kademlia.address import AddressSpace
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.table import RoutingTable


@pytest.fixture()
def space() -> AddressSpace:
    return AddressSpace(8)


@pytest.fixture()
def table(space) -> RoutingTable:
    return RoutingTable(owner=0b10000000, space=space,
                        limits=BucketLimits.uniform(2))


class TestConstruction:
    def test_bucket_count_is_bits(self, table, space):
        assert len(table.buckets) == space.bits

    def test_invalid_owner_rejected(self, space):
        with pytest.raises(AddressError):
            RoutingTable(owner=1 << 9, space=space)

    def test_capacities_follow_limits(self, space):
        limits = BucketLimits(default=4, overrides={0: 20})
        table = RoutingTable(owner=0, space=space, limits=limits)
        assert table.bucket(0).capacity == 20
        assert table.bucket(1).capacity == 4


class TestAdd:
    def test_add_places_in_proximity_bucket(self, table, space):
        peer = 0b10100000  # shares 2 leading bits with owner 0b10000000
        assert table.add(peer)
        assert peer in table.bucket(2)
        assert peer in table

    def test_add_own_address_raises(self, table):
        with pytest.raises(AddressError):
            table.add(table.owner)

    def test_add_beyond_capacity_returns_false(self, table):
        # Bucket 0 of owner 0b10000000 holds addresses starting with 0.
        assert table.add(0b00000001)
        assert table.add(0b00000010)
        assert not table.add(0b00000011)
        assert len(table) == 2

    def test_add_unbounded_ignores_capacity(self, table):
        for peer in (0b00000001, 0b00000010, 0b00000011, 0b00000100):
            assert table.add_unbounded(peer)
        assert len(table.bucket(0)) == 4

    def test_add_unbounded_restores_capacity(self, table):
        table.add_unbounded(0b00000001)
        assert table.bucket(0).capacity == 2

    def test_extend_counts_insertions(self, table):
        added = table.extend([0b00000001, 0b00000010, 0b00000011])
        assert added == 2

    def test_contains_rejects_non_ints(self, table):
        assert "x" not in table
        assert True not in table
        assert (1 << 9) not in table


class TestRemove:
    def test_remove(self, table):
        table.add(0b00000001)
        table.remove(0b00000001)
        assert 0b00000001 not in table

    def test_remove_absent_raises(self, table):
        with pytest.raises(OverlayError):
            table.remove(0b00000001)


class TestClosestPeer:
    def test_empty_table_raises(self, table):
        with pytest.raises(OverlayError, match="empty"):
            table.closest_peer(3)

    def test_returns_xor_minimum(self, table):
        peers = [0b00000001, 0b11000000, 0b10100000]
        for peer in peers:
            table.add(peer)
        target = 0b10110000
        expected = min(peers, key=lambda p: p ^ target)
        assert table.closest_peer(target) == expected

    def test_cache_invalidation_on_add(self, table):
        table.add(0b00000001)
        assert table.closest_peer(0) == 0b00000001
        table.add(0b11000000)
        # A peer closer to 0b11000001 arrived after the cache warmed.
        assert table.closest_peer(0b11000001) == 0b11000000

    def test_cache_invalidation_on_remove(self, table):
        table.add(0b00000001)
        table.add(0b11000000)
        assert table.closest_peer(0b11000001) == 0b11000000
        table.remove(0b11000000)
        assert table.closest_peer(0b11000001) == 0b00000001

    def test_closest_peers_sorted_prefix(self, table):
        peers = [0b00000001, 0b11000000, 0b10100000, 0b10000001]
        for peer in peers:
            table.add(peer)
        target = 0b10000011
        top2 = table.closest_peers(target, 2)
        assert top2 == sorted(peers, key=lambda p: p ^ target)[:2]

    def test_closest_peers_negative_count_raises(self, table):
        with pytest.raises(ConfigurationError):
            table.closest_peers(0, -1)


class TestNeighborhood:
    def test_depth_zero_when_sparse(self, table):
        table.add(0b00000001)
        assert table.neighborhood_depth() == 0

    def test_depth_counts_cumulative_population(self, space):
        owner = 0b00000000
        table = RoutingTable(owner, space, BucketLimits.uniform(10))
        # Four peers at proximity >= 5.
        for peer in (0b00000100, 0b00000101, 0b00000110, 0b00000010):
            table.add(peer)
        # proximities: 5, 5, 5, 6 -> depth 5 has four peers.
        assert table.neighborhood_depth(minimum=4) == 5

    def test_neighborhood_members(self, space):
        owner = 0
        table = RoutingTable(owner, space, BucketLimits.uniform(10))
        near = [0b00000100, 0b00000101, 0b00000110, 0b00000010]
        far = [0b10000000]
        for peer in near + far:
            table.add(peer)
        members = table.neighborhood(minimum=4)
        assert set(members) == set(near)

    def test_bad_minimum_raises(self, table):
        with pytest.raises(ConfigurationError):
            table.neighborhood_depth(minimum=0)


class TestIntrospection:
    def test_len_and_iter(self, table):
        table.add(0b00000001)
        table.add(0b11000000)
        assert len(table) == 2
        assert set(table) == {0b00000001, 0b11000000}

    def test_bucket_histogram(self, table):
        table.add(0b00000001)  # bucket 0
        table.add(0b00000010)  # bucket 0
        table.add(0b11000000)  # bucket 1
        assert table.bucket_histogram() == {0: 2, 1: 1}

    def test_bucket_range_validated(self, table, space):
        with pytest.raises(ConfigurationError):
            table.bucket(space.bits)

    def test_peer_array_matches_iter(self, table):
        table.add(0b00000001)
        table.add(0b11000000)
        assert sorted(table.peer_array().tolist()) == sorted(table)
