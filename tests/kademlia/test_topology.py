"""Unit tests for topology diagnostics (repro.kademlia.topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kademlia.topology import (
    degree_stats,
    is_fully_routable,
    sample_route_lengths,
    to_networkx,
)


class TestDegreeStats:
    def test_values_consistent(self, small_overlay):
        stats = degree_stats(small_overlay)
        degrees = [
            len(small_overlay.table(a)) for a in small_overlay.addresses
        ]
        assert stats.n_nodes == len(small_overlay)
        assert stats.min_degree == min(degrees)
        assert stats.max_degree == max(degrees)
        assert stats.total_edges == sum(degrees)
        assert stats.mean_degree == pytest.approx(np.mean(degrees))

    def test_str_mentions_counts(self, small_overlay):
        text = str(degree_stats(small_overlay))
        assert str(len(small_overlay)) in text

    def test_wider_buckets_mean_higher_degree(self, medium_overlay,
                                              wide_overlay):
        assert (
            degree_stats(wide_overlay).mean_degree
            > degree_stats(medium_overlay).mean_degree
        )


class TestSampleRouteLengths:
    def test_shape_and_bounds(self, medium_overlay):
        hops = sample_route_lengths(medium_overlay, samples=100, seed=1)
        assert hops.shape == (100,)
        assert hops.min() >= 0
        assert hops.max() <= medium_overlay.space.bits

    def test_deterministic(self, medium_overlay):
        a = sample_route_lengths(medium_overlay, samples=50, seed=9)
        b = sample_route_lengths(medium_overlay, samples=50, seed=9)
        assert np.array_equal(a, b)

    def test_bad_samples_rejected(self, medium_overlay):
        with pytest.raises(ConfigurationError):
            sample_route_lengths(medium_overlay, samples=0)


class TestRoutability:
    def test_small_overlay_fully_routable(self, small_overlay):
        assert is_fully_routable(small_overlay, strict=True)


class TestNetworkxExport:
    def test_graph_shape(self, small_overlay):
        graph = to_networkx(small_overlay)
        assert graph.number_of_nodes() == len(small_overlay)
        expected_edges = sum(
            len(small_overlay.table(a)) for a in small_overlay.addresses
        )
        assert graph.number_of_edges() == expected_edges

    def test_edges_carry_bucket_attribute(self, small_overlay):
        graph = to_networkx(small_overlay)
        space = small_overlay.space
        for owner, peer, data in list(graph.edges(data=True))[:50]:
            assert data["bucket"] == space.proximity(owner, peer)
