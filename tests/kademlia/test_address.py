"""Unit tests for overlay addressing (repro.kademlia.address)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AddressError, ConfigurationError
from repro.kademlia.address import (
    AddressSpace,
    bit_length_array,
    common_prefix_length,
    proximity_array,
    xor_distance,
)


class TestXorDistance:
    def test_identity(self):
        assert xor_distance(42, 42) == 0

    def test_symmetry(self):
        assert xor_distance(3, 12) == xor_distance(12, 3)

    def test_known_value(self):
        assert xor_distance(0b1010, 0b0110) == 0b1100


class TestCommonPrefixLength:
    def test_equal_addresses_share_all_bits(self):
        assert common_prefix_length(7, 7, 8) == 8

    def test_first_bit_differs(self):
        assert common_prefix_length(0b10000000, 0b00000000, 8) == 0

    def test_last_bit_differs(self):
        assert common_prefix_length(0b00000001, 0b00000000, 8) == 7

    def test_middle_bit(self):
        assert common_prefix_length(0b10110000, 0b10100000, 8) == 3

    @pytest.mark.parametrize("a,b,bits,expected", [
        (0, 1, 4, 3),
        (0b1000, 0b1001, 4, 3),
        (0b1000, 0b1100, 4, 1),
        (0b1111, 0b0111, 4, 0),
    ])
    def test_examples(self, a, b, bits, expected):
        assert common_prefix_length(a, b, bits) == expected


class TestBitLengthArray:
    def test_matches_python_bit_length(self):
        values = np.array([0, 1, 2, 3, 4, 255, 256, 65535, 2**52, 2**63],
                          dtype=np.uint64)
        expected = [int(v).bit_length() for v in values]
        assert bit_length_array(values).tolist() == expected

    def test_near_float_rounding_boundary(self):
        # 2**60 - 1 rounds UP to 2**60 in float64; the exact integer
        # implementation must not be fooled.
        value = np.array([2**60 - 1], dtype=np.uint64)
        assert bit_length_array(value)[0] == 60

    def test_zero(self):
        assert bit_length_array(np.array([0], dtype=np.uint64))[0] == 0


class TestProximityArray:
    def test_matches_scalar(self):
        bits = 10
        owner = 0b1010101010
        others = np.arange(0, 1 << bits, 7, dtype=np.uint64)
        expected = [
            common_prefix_length(owner, int(o), bits) for o in others
        ]
        assert proximity_array(owner, others, bits).tolist() == expected


class TestAddressSpaceConstruction:
    def test_default_is_16_bits(self):
        assert AddressSpace().bits == 16
        assert AddressSpace().size == 65536

    @pytest.mark.parametrize("bits", [0, -1, 65, 1.5, True])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ConfigurationError):
            AddressSpace(bits)

    def test_value_semantics(self):
        assert AddressSpace(8) == AddressSpace(8)
        assert AddressSpace(8) != AddressSpace(9)


class TestAddressValidation:
    def test_contains(self):
        space = AddressSpace(4)
        assert 0 in space
        assert 15 in space
        assert 16 not in space
        assert -1 not in space
        assert True not in space  # booleans are not addresses
        assert "3" not in space

    def test_validate_passes_through(self):
        assert AddressSpace(4).validate(9) == 9

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(AddressError, match="outside address space"):
            AddressSpace(4).validate(16)

    def test_validate_many(self):
        assert AddressSpace(4).validate_many([1, 2, 3]) == [1, 2, 3]
        with pytest.raises(AddressError):
            AddressSpace(4).validate_many([1, 99])


class TestAddressSpaceMetrics:
    def test_distance_validates(self):
        with pytest.raises(AddressError):
            AddressSpace(4).distance(1, 99)

    def test_proximity_of_equal_is_bits(self):
        assert AddressSpace(6).proximity(5, 5) == 6

    def test_bucket_index_is_proximity(self):
        space = AddressSpace(8)
        assert space.bucket_index(0b10000000, 0b10100000) == 2

    def test_bucket_index_rejects_self(self):
        with pytest.raises(AddressError, match="own address"):
            AddressSpace(8).bucket_index(7, 7)


class TestClosest:
    def test_picks_xor_minimum(self):
        space = AddressSpace(8)
        assert space.closest(0b1100, [0b1000, 0b1110, 0b0100]) == 0b1110

    def test_unique_winner(self):
        # XOR distances from distinct candidates are distinct.
        space = AddressSpace(8)
        candidates = list(range(20))
        target = 13
        winner = space.closest(target, candidates)
        distances = sorted(c ^ target for c in candidates)
        assert winner ^ target == distances[0]

    def test_empty_candidates_raise(self):
        with pytest.raises(AddressError, match="at least one"):
            AddressSpace(8).closest(1, [])

    def test_closest_index_matches_closest(self):
        space = AddressSpace(8)
        candidates = np.array([3, 200, 77, 130], dtype=np.uint64)
        index = space.closest_index(150, candidates)
        assert int(candidates[index]) == space.closest(
            150, [int(c) for c in candidates]
        )

    def test_closest_index_empty_raises(self):
        with pytest.raises(AddressError):
            AddressSpace(8).closest_index(1, np.array([], dtype=np.uint64))


class TestSortByDistance:
    def test_sorted_order(self):
        space = AddressSpace(8)
        result = space.sort_by_distance(0, [5, 1, 9, 2])
        assert result == sorted([5, 1, 9, 2])

    def test_nontrivial_target(self):
        space = AddressSpace(8)
        result = space.sort_by_distance(255, [0, 128, 254, 255])
        assert result == [255, 254, 128, 0]


class TestRandomAddresses:
    def test_unique_draw(self, rng):
        space = AddressSpace(8)
        addresses = space.random_addresses(100, rng, unique=True)
        assert len(set(addresses)) == 100
        assert all(a in space for a in addresses)

    def test_unique_overflow_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="unique"):
            AddressSpace(3).random_addresses(20, rng, unique=True)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            AddressSpace(3).random_addresses(-1, rng)

    def test_deterministic(self):
        space = AddressSpace(10)
        a = space.random_addresses(50, np.random.default_rng(3))
        b = space.random_addresses(50, np.random.default_rng(3))
        assert a == b


class TestPrefixGroups:
    def test_group_members_share_prefix(self):
        space = AddressSpace(6)
        members = list(space.iter_prefix_group(0b101, 3))
        assert len(members) == 8
        for member in members:
            assert member >> 3 == 0b101

    def test_zero_length_prefix_is_whole_space(self):
        space = AddressSpace(4)
        assert len(list(space.iter_prefix_group(0, 0))) == 16

    def test_oversized_prefix_rejected(self):
        with pytest.raises(AddressError):
            list(AddressSpace(4).iter_prefix_group(9, 3))

    def test_bad_prefix_len_rejected(self):
        with pytest.raises(ConfigurationError):
            list(AddressSpace(4).iter_prefix_group(0, 5))


class TestFormatting:
    def test_zero_padded_binary(self):
        assert AddressSpace(8).format_address(5) == "00000101"
