"""Unit tests for overlay construction (repro.kademlia.overlay)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, OverlayError
from repro.kademlia.address import common_prefix_length
from repro.kademlia.buckets import BucketLimits
from repro.kademlia.overlay import Overlay, OverlayConfig


class TestOverlayConfig:
    def test_paper_defaults(self):
        config = OverlayConfig()
        assert config.n_nodes == 1000
        assert config.bits == 16
        assert config.limits.default == 4

    def test_paper_factory(self):
        config = OverlayConfig.paper(bucket_size=20, seed=9)
        assert config.limits.default == 20
        assert config.seed == 9

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot fit"):
            OverlayConfig(n_nodes=300, bits=8)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig(n_nodes=1, bits=8)

    def test_bad_neighborhood_min_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig(n_nodes=10, bits=8, neighborhood_min=0)

    def test_value_equality(self):
        assert OverlayConfig(n_nodes=10, bits=8) == OverlayConfig(
            n_nodes=10, bits=8
        )


class TestBuildDeterminism:
    def test_same_config_same_overlay(self):
        config = OverlayConfig(n_nodes=50, bits=10, seed=3)
        a = Overlay.build(config)
        b = Overlay.build(config)
        assert a.addresses == b.addresses
        for address in a.addresses:
            assert a.table(address).peers() == b.table(address).peers()

    def test_different_seed_different_overlay(self):
        a = Overlay.build(OverlayConfig(n_nodes=50, bits=10, seed=3))
        b = Overlay.build(OverlayConfig(n_nodes=50, bits=10, seed=4))
        assert a.addresses != b.addresses


class TestBuildStructure:
    def test_unique_addresses(self, medium_overlay):
        assert len(set(medium_overlay.addresses)) == len(medium_overlay)

    def test_buckets_hold_correct_proximity(self, medium_overlay):
        space = medium_overlay.space
        for owner in list(medium_overlay.addresses)[:20]:
            table = medium_overlay.table(owner)
            for bucket in table.buckets:
                for peer in bucket:
                    assert space.proximity(owner, peer) == bucket.index

    def test_small_candidate_sets_fully_included(self):
        # When a bucket has <= k candidates, all must be present.
        overlay = Overlay.build(OverlayConfig(n_nodes=40, bits=8, seed=2))
        space = overlay.space
        addresses = set(overlay.addresses)
        for owner in overlay.addresses:
            table = overlay.table(owner)
            for index in range(space.bits):
                candidates = {
                    other for other in addresses
                    if other != owner
                    and common_prefix_length(owner, other, space.bits) == index
                }
                if len(candidates) <= 4:
                    assert candidates <= set(table.bucket(index).peers)

    def test_neighborhood_contains_nearest_nodes(self, medium_overlay):
        # Every node must know its 4 XOR-nearest peers (the
        # neighborhood rule guarantees at least that).
        space = medium_overlay.space
        for owner in list(medium_overlay.addresses)[:30]:
            table = medium_overlay.table(owner)
            others = [a for a in medium_overlay.addresses if a != owner]
            nearest = space.sort_by_distance(owner, others)[:4]
            prefix_nearest = [
                n for n in nearest
                if space.proximity(owner, n)
                >= table.neighborhood_depth()
            ]
            for peer in prefix_nearest:
                assert peer in table

    def test_symmetric_neighborhood_edges(self):
        overlay = Overlay.build(
            OverlayConfig(n_nodes=60, bits=10, seed=7,
                          symmetric_neighborhood=True)
        )
        space = overlay.space
        for owner in overlay.addresses:
            table = overlay.table(owner)
            depth = table.neighborhood_depth()
            for peer in table.peers():
                if space.proximity(owner, peer) >= depth:
                    assert owner in overlay.table(peer)


class TestQueries:
    def test_closest_node_brute_force(self, medium_overlay, rng):
        addresses = np.asarray(medium_overlay.addresses)
        for target in rng.integers(0, medium_overlay.space.size, size=50):
            expected = min(addresses, key=lambda a: int(a) ^ int(target))
            assert medium_overlay.closest_node(int(target)) == expected

    def test_storer_table_matches_closest_node(self, small_overlay):
        storers = small_overlay.storer_table()
        for target in range(0, small_overlay.space.size, 7):
            expected = small_overlay.closest_node(target)
            assert small_overlay.addresses[storers[target]] == expected

    def test_index_of_roundtrip(self, small_overlay):
        for index, address in enumerate(small_overlay.addresses):
            assert small_overlay.index_of(address) == index

    def test_index_of_unknown_raises(self, small_overlay):
        missing = next(
            a for a in range(small_overlay.space.size)
            if a not in small_overlay
        )
        with pytest.raises(OverlayError):
            small_overlay.index_of(missing)

    def test_table_unknown_raises(self, small_overlay):
        with pytest.raises(OverlayError):
            small_overlay.table(-1)

    def test_degree_histogram_keys(self, small_overlay):
        histogram = small_overlay.degree_histogram()
        assert set(histogram) == set(small_overlay.addresses)
        assert all(degree > 0 for degree in histogram.values())


class TestPersistence:
    def test_dict_roundtrip(self, small_overlay):
        clone = Overlay.from_dict(small_overlay.to_dict())
        assert clone.addresses == small_overlay.addresses
        for address in small_overlay.addresses:
            assert set(clone.table(address).peers()) == set(
                small_overlay.table(address).peers()
            )

    def test_file_roundtrip(self, small_overlay, tmp_path):
        path = tmp_path / "overlay.json"
        small_overlay.save(path)
        clone = Overlay.load(path)
        assert clone.addresses == small_overlay.addresses

    def test_bucket_zero_override_roundtrip(self, tmp_path):
        config = OverlayConfig(
            n_nodes=30, bits=8, seed=1,
            limits=BucketLimits.with_bucket_zero(4, 12),
        )
        overlay = Overlay.build(config)
        clone = Overlay.from_dict(overlay.to_dict())
        assert clone.config.limits.capacity(0) == 12


class TestValidationOnConstruction:
    def test_duplicate_addresses_rejected(self, small_overlay):
        addresses = list(small_overlay.addresses)
        tables = {a: small_overlay.table(a) for a in addresses}
        addresses[1] = addresses[0]
        with pytest.raises(OverlayError, match="unique"):
            Overlay(small_overlay.config, addresses, tables)

    def test_missing_table_rejected(self, small_overlay):
        addresses = list(small_overlay.addresses)
        tables = {a: small_overlay.table(a) for a in addresses[:-1]}
        with pytest.raises(OverlayError, match="missing routing table"):
            Overlay(small_overlay.config, addresses, tables)
