"""Incremental storer-table maintenance: patch == rebuild, exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kademlia.table import (
    alive_storer_table,
    chain_fingerprint,
    patch_storer_table,
)

N_NODES = 48
SPACE = 512


@pytest.fixture(scope="module")
def addresses() -> np.ndarray:
    return np.sort(np.random.default_rng(7).choice(
        SPACE, size=N_NODES, replace=False
    )).astype(np.uint64)


@pytest.fixture(scope="module")
def base(addresses) -> np.ndarray:
    return alive_storer_table(
        addresses, np.ones(N_NODES, bool), np.dtype(np.uint16), SPACE
    )


def test_full_rebuild_is_closest_live_node(addresses, base):
    alive = np.ones(N_NODES, bool)
    alive[[0, 5, 9]] = False
    table = alive_storer_table(addresses, alive, np.dtype(np.uint16), SPACE)
    for target in (0, 17, 255, SPACE - 1):
        live = np.flatnonzero(alive)
        distances = np.uint64(target) ^ addresses[live]
        assert table[target] == live[np.argmin(distances)]


def test_all_offline_rejected(addresses):
    with pytest.raises(ConfigurationError, match="offline"):
        alive_storer_table(
            addresses, np.zeros(N_NODES, bool), np.dtype(np.uint16), SPACE
        )


def test_leave_patch_equals_rebuild(addresses, base):
    alive = np.ones(N_NODES, bool)
    leaves = np.array([2, 11, 30])
    alive[leaves] = False
    patched = patch_storer_table(base, addresses, alive, leaves, [])
    rebuilt = alive_storer_table(
        addresses, alive, np.dtype(np.uint16), SPACE
    )
    assert np.array_equal(patched, rebuilt)
    assert patched.dtype == base.dtype


def test_join_patch_equals_rebuild(addresses, base):
    # Leave, then rejoin one node: the join pass must win back every
    # address it is closest to.
    alive = np.ones(N_NODES, bool)
    alive[[2, 11, 30]] = False
    parent = patch_storer_table(base, addresses, alive, [2, 11, 30], [])
    alive2 = alive.copy()
    alive2[11] = True
    patched = patch_storer_table(parent, addresses, alive2, [], [11])
    rebuilt = alive_storer_table(
        addresses, alive2, np.dtype(np.uint16), SPACE
    )
    assert np.array_equal(patched, rebuilt)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_patch_chain_equals_rebuild_along_any_history(data):
    """Arbitrary leave/join sequences stay exact, epoch after epoch."""
    rng_seed = data.draw(st.integers(0, 2**16), label="address_seed")
    addresses = np.sort(np.random.default_rng(rng_seed).choice(
        SPACE, size=N_NODES, replace=False
    )).astype(np.uint64)
    alive = np.ones(N_NODES, bool)
    table = alive_storer_table(
        addresses, alive, np.dtype(np.uint16), SPACE
    )
    for _ in range(data.draw(st.integers(1, 4), label="epochs")):
        mask = np.array(
            data.draw(
                st.lists(st.booleans(), min_size=N_NODES,
                         max_size=N_NODES),
                label="alive",
            )
        )
        if not mask.any():
            mask[data.draw(st.integers(0, N_NODES - 1),
                           label="survivor")] = True
        leaves = np.flatnonzero(alive & ~mask)
        joins = np.flatnonzero(~alive & mask)
        table = patch_storer_table(table, addresses, mask, leaves, joins)
        alive = mask
        assert np.array_equal(
            table,
            alive_storer_table(addresses, alive, np.dtype(np.uint16),
                               SPACE),
        )


def test_empty_delta_is_identity(addresses, base):
    patched = patch_storer_table(
        base, addresses, np.ones(N_NODES, bool), [], []
    )
    assert np.array_equal(patched, base)
    assert patched is not base


class TestChainFingerprint:
    def test_deterministic_and_canonical(self):
        assert chain_fingerprint("a", [3, 1], [2]) == chain_fingerprint(
            "a", np.array([1, 3]), np.array([2])
        )

    def test_sensitive_to_parent_and_delta(self):
        base = chain_fingerprint("a", [1], [2])
        assert base != chain_fingerprint("b", [1], [2])
        assert base != chain_fingerprint("a", [2], [1])
        assert base != chain_fingerprint("a", [1, 2], [])
        assert base != chain_fingerprint("a", [], [1, 2])

    def test_chains_encode_history(self):
        one = chain_fingerprint(chain_fingerprint("a", [1], []), [2], [])
        flat = chain_fingerprint("a", [1, 2], [])
        assert one != flat
