"""Unit tests for the assembled SWAP incentives (repro.core.incentives)."""

from __future__ import annotations

import pytest

from repro.core.incentives import SwapIncentives
from repro.core.policies import AllHopsPolicy, NoPaymentPolicy
from repro.core.pricing import FlatPricing, XorDistancePricing
from repro.kademlia.address import AddressSpace
from repro.kademlia.routing import Route


@pytest.fixture()
def space() -> AddressSpace:
    return AddressSpace(8)


@pytest.fixture()
def incentives(space) -> SwapIncentives:
    return SwapIncentives(pricing=FlatPricing(1.0))


class TestProcessRoute:
    def test_counters_per_hop(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2, 3, 4)))
        nodes = [1, 2, 3, 4]
        assert incentives.contributions(nodes) == [0.0, 1.0, 1.0, 1.0]
        assert incentives.first_hop_counts(nodes) == [0, 1, 0, 0]

    def test_first_hop_paid_directly(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        assert incentives.incomes([1, 2, 3]) == [0.0, 1.0, 0.0]
        # The paid hop never becomes channel debt.
        assert incentives.ledger.balance(2, 1) == 0.0
        # The unpaid hop does.
        assert incentives.ledger.balance(3, 2) == 1.0

    def test_local_hit_is_free(self, incentives):
        incentives.process_route(Route(target=5, path=(1,)))
        assert incentives.incomes([1]) == [0.0]
        assert incentives.contributions([1]) == [0.0]

    def test_route_counter(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2)))
        incentives.process_route(Route(target=6, path=(1, 2)))
        assert incentives.routes_processed == 2

    def test_xor_priced_income(self, space):
        incentives = SwapIncentives(pricing=XorDistancePricing(space))
        route = Route(target=0b10000000, path=(0b1, 0b11000000))
        incentives.process_route(route)
        expected = XorDistancePricing(space).price(0b11000000, 0b10000000)
        assert incentives.incomes([0b11000000]) == [pytest.approx(expected)]

    def test_all_hops_policy_pays_every_edge(self, space):
        incentives = SwapIncentives(
            pricing=FlatPricing(1.0), policy=AllHopsPolicy()
        )
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        assert incentives.incomes([2, 3]) == [1.0, 1.0]
        # All service was purchased; no channel debt anywhere.
        assert incentives.ledger.balance(2, 1) == 0.0
        assert incentives.ledger.balance(3, 2) == 0.0

    def test_no_payment_policy_accrues_debt_only(self, space):
        incentives = SwapIncentives(
            pricing=FlatPricing(1.0), policy=NoPaymentPolicy()
        )
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        assert incentives.incomes([2, 3]) == [0.0, 0.0]
        assert incentives.ledger.balance(2, 1) == 1.0


class TestDefaults:
    def test_freerider_defaults_and_debt_falls_back(self, incentives):
        incentives.set_deposit(1, 0.0)
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        assert incentives.defaults[1] == 1
        assert incentives.incomes([2]) == [0.0]
        # The unpaid purchase became channel debt instead.
        assert incentives.ledger.balance(2, 1) == 1.0

    def test_funded_node_never_defaults(self, incentives):
        incentives.set_deposit(1, 100.0)
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        assert incentives.defaults == {}


class TestReports:
    def test_fairness_uses_income(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        report = incentives.fairness([1, 2, 3])
        assert report.total_peers == 3
        assert report.rewarded_peers == 1

    def test_paper_f1_uses_first_hop_counts(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        incentives.process_route(Route(target=6, path=(4, 2)))
        report = incentives.paper_f1_report([1, 2, 3, 4])
        # Node 2: forwarded 2, paid 2 -> only rewarded peer.
        assert report.rewarded_peers == 1

    def test_amortize_delegates(self, incentives):
        incentives.process_route(Route(target=5, path=(1, 2, 3)))
        forgiven = incentives.amortize(0.4)
        assert forgiven == pytest.approx(0.4)
