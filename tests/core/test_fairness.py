"""Unit tests for fairness metrics (repro.core.fairness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fairness import (
    evaluate_fairness,
    f1_values,
    f2_values,
    gini,
    gini_pairwise,
    lorenz_curve,
)
from repro.errors import ConfigurationError


class TestGiniKnownValues:
    def test_perfect_equality_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_single_value_is_zero(self):
        assert gini([3.0]) == pytest.approx(0.0)

    def test_all_zero_is_zero(self):
        assert gini([0.0, 0.0, 0.0]) == 0.0

    def test_one_winner(self):
        # One of n earns everything: G = (n-1)/n.
        for n in (2, 5, 10):
            values = [0.0] * (n - 1) + [1.0]
            assert gini(values) == pytest.approx((n - 1) / n)

    def test_two_point_distribution(self):
        # [1, 3]: mean abs diff = 2*|1-3|/4 = 1; G = 1/(2*mean)=1/4.
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 7.0, 4.0])
        assert gini(values) == pytest.approx(gini(values * 1000))

    def test_permutation_invariant(self, rng):
        values = rng.random(50)
        shuffled = rng.permutation(values)
        assert gini(values) == pytest.approx(gini(shuffled))

    def test_in_unit_interval(self, rng):
        for _ in range(20):
            values = rng.random(30) * rng.integers(1, 100)
            assert 0.0 <= gini(values) <= 1.0


class TestGiniEquivalence:
    def test_fast_matches_pairwise_definition(self, rng):
        for _ in range(20):
            values = rng.random(rng.integers(1, 60))
            assert gini(values) == pytest.approx(
                gini_pairwise(values), abs=1e-12
            )

    def test_with_zeros_and_ties(self):
        values = [0.0, 0.0, 2.0, 2.0, 5.0]
        assert gini(values) == pytest.approx(gini_pairwise(values))


class TestGiniValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            gini([1.0, -0.5])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            gini([1.0, float("nan")])

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            gini(np.ones((2, 2)))


class TestLorenzCurve:
    def test_endpoints(self):
        curve = lorenz_curve([1.0, 2.0, 3.0])
        assert curve.population[0] == 0.0
        assert curve.population[-1] == 1.0
        assert curve.cumulative[0] == 0.0
        assert curve.cumulative[-1] == pytest.approx(1.0)

    def test_monotone_and_convex(self, rng):
        values = rng.random(40)
        curve = lorenz_curve(values)
        diffs = np.diff(curve.cumulative)
        assert np.all(diffs >= -1e-12)
        # Convexity: increments non-decreasing (values sorted ascending).
        assert np.all(np.diff(diffs) >= -1e-12)

    def test_below_diagonal(self, rng):
        values = rng.random(40)
        curve = lorenz_curve(values)
        assert np.all(curve.cumulative <= curve.population + 1e-12)

    def test_curve_gini_matches_direct(self, rng):
        values = rng.random(200)
        curve = lorenz_curve(values)
        # Trapezoid Gini converges to the exact Gini for large n.
        assert curve.gini == pytest.approx(gini(values), abs=0.01)

    def test_equality_curve_is_diagonal(self):
        curve = lorenz_curve([2.0, 2.0, 2.0, 2.0])
        assert np.allclose(curve.cumulative, curve.population)
        assert curve.gini == pytest.approx(0.0, abs=1e-12)

    def test_all_zero_is_diagonal(self):
        curve = lorenz_curve([0.0, 0.0])
        assert np.allclose(curve.cumulative, curve.population)

    def test_share_of_poorest(self):
        curve = lorenz_curve([1.0, 1.0, 1.0, 97.0])
        assert curve.share_of_poorest(0.75) == pytest.approx(0.03)
        with pytest.raises(ConfigurationError):
            curve.share_of_poorest(1.5)

    def test_points(self):
        points = lorenz_curve([1.0, 3.0]).points()
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (1.0, 1.0)
        assert points[1] == (0.5, 0.25)

    def test_mismatched_arrays_rejected(self):
        from repro.core.fairness import LorenzCurve

        with pytest.raises(ConfigurationError):
            LorenzCurve(np.zeros(3), np.zeros(4))


class TestF1F2Values:
    def test_f2_is_identity_on_valid_incomes(self):
        incomes = [0.0, 1.0, 2.0]
        assert f2_values(incomes).tolist() == incomes

    def test_f1_ratios_omit_unpaid(self):
        contributions = [10.0, 20.0, 30.0]
        rewards = [2.0, 0.0, 3.0]
        ratios = f1_values(contributions, rewards)
        assert ratios.tolist() == [5.0, 10.0]

    def test_f1_zero_contribution_allowed(self):
        ratios = f1_values([0.0, 4.0], [1.0, 2.0])
        assert ratios.tolist() == [0.0, 2.0]

    def test_f1_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="same shape"):
            f1_values([1.0], [1.0, 2.0])

    def test_f1_nobody_paid_rejected(self):
        with pytest.raises(ConfigurationError, match="positive reward"):
            f1_values([1.0, 2.0], [0.0, 0.0])

    def test_f1_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            f1_values([-1.0], [1.0])


class TestEvaluateFairness:
    def test_perfectly_proportional_gives_zero_f1(self, rng):
        contributions = rng.random(30) + 0.1
        rewards = contributions * 3.0  # exactly proportional
        report = evaluate_fairness(contributions, rewards)
        assert report.f1_gini == pytest.approx(0.0, abs=1e-12)
        assert report.rewarded_peers == 30
        assert report.total_peers == 30

    def test_equal_rewards_give_zero_f2(self, rng):
        contributions = rng.random(30) + 0.1
        rewards = np.full(30, 2.0)
        report = evaluate_fairness(contributions, rewards)
        assert report.f2_gini == pytest.approx(0.0, abs=1e-12)

    def test_summary_mentions_both_ginis(self):
        report = evaluate_fairness([1.0, 2.0], [1.0, 1.0])
        text = report.summary()
        assert "F1" in text and "F2" in text
        assert "2/2" in text
