"""Unit tests for amortization schedules (repro.core.amortization)."""

from __future__ import annotations

import math

import pytest

from repro.core.amortization import (
    ExponentialAmortization,
    LinearAmortization,
    NoAmortization,
    make_amortization,
)
from repro.errors import ConfigurationError


class TestLinearAmortization:
    def test_rate_times_elapsed(self):
        schedule = LinearAmortization(units_per_time=2.0)
        assert schedule.forgiven(100.0, 3.0) == 6.0

    def test_capped_at_balance(self):
        schedule = LinearAmortization(units_per_time=10.0)
        assert schedule.forgiven(4.0, 100.0) == 4.0

    def test_negative_balance_uses_magnitude(self):
        schedule = LinearAmortization(units_per_time=1.0)
        assert schedule.forgiven(-5.0, 2.0) == 2.0

    def test_zero_elapsed_forgives_nothing(self):
        assert LinearAmortization(1.0).forgiven(5.0, 0.0) == 0.0

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearAmortization(1.0).forgiven(5.0, -1.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearAmortization(0.0)


class TestExponentialAmortization:
    def test_decay_fraction(self):
        schedule = ExponentialAmortization(rate=math.log(2))
        # One half-life forgives half the balance.
        assert schedule.forgiven(8.0, 1.0) == pytest.approx(4.0)

    def test_bounded_by_balance(self):
        schedule = ExponentialAmortization(rate=5.0)
        assert schedule.forgiven(3.0, 100.0) <= 3.0

    def test_monotone_in_time(self):
        schedule = ExponentialAmortization(rate=0.5)
        assert schedule.forgiven(10.0, 2.0) > schedule.forgiven(10.0, 1.0)


class TestNoAmortization:
    def test_never_forgives(self):
        schedule = NoAmortization()
        assert schedule.forgiven(100.0, 1000.0) == 0.0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("linear", LinearAmortization),
        ("exponential", ExponentialAmortization),
        ("none", NoAmortization),
    ])
    def test_known(self, name, cls):
        assert isinstance(make_amortization(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_amortization("bogus")

    def test_names_stable(self):
        assert make_amortization("linear").name == "linear"
        assert make_amortization("exponential").name == "exponential"
        assert make_amortization("none").name == "none"
