"""Unit tests for payment policies (repro.core.policies)."""

from __future__ import annotations

import pytest

from repro.core.policies import (
    AllHopsPolicy,
    NoPaymentPolicy,
    Payment,
    ZeroProximityPolicy,
    make_policy,
)
from repro.core.pricing import FlatPricing
from repro.errors import ConfigurationError
from repro.kademlia.routing import Route


@pytest.fixture()
def route() -> Route:
    return Route(target=99, path=(10, 20, 30, 40))


class TestPayment:
    def test_self_payment_rejected(self):
        with pytest.raises(ConfigurationError):
            Payment(payer=1, payee=1, amount=1.0)

    def test_nonpositive_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            Payment(payer=1, payee=2, amount=0.0)


class TestZeroProximityPolicy:
    def test_originator_pays_first_hop_only(self, route):
        payments = ZeroProximityPolicy().payments(route, FlatPricing(2.0))
        assert payments == [Payment(payer=10, payee=20, amount=2.0)]

    def test_local_hit_pays_nobody(self):
        route = Route(target=1, path=(10,))
        assert ZeroProximityPolicy().payments(route, FlatPricing()) == []

    def test_name(self):
        assert ZeroProximityPolicy().name == "zero-proximity"


class TestAllHopsPolicy:
    def test_every_edge_paid(self, route):
        payments = AllHopsPolicy().payments(route, FlatPricing(1.0))
        assert [(p.payer, p.payee) for p in payments] == [
            (10, 20), (20, 30), (30, 40),
        ]

    def test_name(self):
        assert AllHopsPolicy().name == "all-hops"


class TestNoPaymentPolicy:
    def test_nothing_paid(self, route):
        assert NoPaymentPolicy().payments(route, FlatPricing()) == []


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("zero-proximity", ZeroProximityPolicy),
        ("all-hops", AllHopsPolicy),
        ("none", NoPaymentPolicy),
    ])
    def test_known(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="zero-proximity"):
            make_policy("bogus")
