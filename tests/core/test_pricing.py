"""Unit tests for pricing strategies (repro.core.pricing)."""

from __future__ import annotations

import pytest

from repro.core.pricing import (
    FlatPricing,
    ProximityStepPricing,
    XorDistancePricing,
    make_pricing,
)
from repro.errors import ConfigurationError
from repro.kademlia.address import AddressSpace


@pytest.fixture()
def space() -> AddressSpace:
    return AddressSpace(8)


class TestXorDistancePricing:
    def test_proportional_to_distance(self, space):
        pricing = XorDistancePricing(space)
        near = pricing.price(0b10000001, 0b10000000)
        far = pricing.price(0b00000000, 0b10000000)
        assert far > near

    def test_normalized_below_base(self, space):
        pricing = XorDistancePricing(space, base=2.0)
        for server in (0, 17, 255):
            for chunk in (0, 128, 255):
                assert 0 < pricing.price(server, chunk) <= 2.0

    def test_same_address_still_positive(self, space):
        assert XorDistancePricing(space).price(7, 7) > 0

    def test_exact_value(self, space):
        pricing = XorDistancePricing(space, base=1.0)
        assert pricing.price(0, 128) == pytest.approx(128 / 256)

    def test_bad_base_rejected(self, space):
        with pytest.raises(ConfigurationError):
            XorDistancePricing(space, base=0)

    def test_name(self, space):
        assert XorDistancePricing(space).name == "xor"


class TestProximityStepPricing:
    def test_steps_with_proximity(self, space):
        pricing = ProximityStepPricing(space, base=1.0)
        # proximity 0 -> price 8; proximity 7 -> price 1.
        assert pricing.price(0b00000000, 0b10000000) == 8.0
        assert pricing.price(0b00000000, 0b00000001) == 1.0

    def test_floored_at_base(self, space):
        pricing = ProximityStepPricing(space, base=3.0)
        assert pricing.price(5, 5) == 3.0

    def test_name(self, space):
        assert ProximityStepPricing(space).name == "proximity"


class TestFlatPricing:
    def test_constant(self):
        pricing = FlatPricing(2.5)
        assert pricing.price(0, 1) == 2.5
        assert pricing.price(9, 200) == 2.5

    def test_bad_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            FlatPricing(-1.0)

    def test_name(self):
        assert FlatPricing().name == "flat"


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("xor", XorDistancePricing),
        ("proximity", ProximityStepPricing),
        ("flat", FlatPricing),
    ])
    def test_known_names(self, space, name, cls):
        assert isinstance(make_pricing(name, space), cls)

    def test_unknown_name_lists_options(self, space):
        with pytest.raises(ConfigurationError, match="flat"):
            make_pricing("bogus", space)
