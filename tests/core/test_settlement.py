"""Unit tests for cheque settlement (repro.core.settlement)."""

from __future__ import annotations

import pytest

from repro.core.settlement import Cheque, Chequebook, SettlementService
from repro.core.swap import SwapLedger
from repro.errors import (
    InsufficientFundsError,
    SettlementError,
)


class TestCheque:
    def test_self_cheque_rejected(self):
        with pytest.raises(SettlementError):
            Cheque(issuer=1, beneficiary=1, cumulative_amount=1.0, serial=1)

    def test_nonpositive_amount_rejected(self):
        with pytest.raises(Exception):
            Cheque(issuer=1, beneficiary=2, cumulative_amount=0.0, serial=1)

    def test_bad_serial_rejected(self):
        with pytest.raises(SettlementError):
            Cheque(issuer=1, beneficiary=2, cumulative_amount=1.0, serial=0)


class TestChequebookIssue:
    def test_cumulative_amounts(self):
        book = Chequebook(owner=1)
        first = book.issue(2, 5.0)
        second = book.issue(2, 3.0)
        assert first.cumulative_amount == 5.0
        assert second.cumulative_amount == 8.0
        assert second.serial == 2
        assert book.promised_to(2) == 8.0

    def test_separate_beneficiaries(self):
        book = Chequebook(owner=1)
        book.issue(2, 5.0)
        book.issue(3, 1.0)
        assert book.promised_to(2) == 5.0
        assert book.promised_to(3) == 1.0
        assert book.total_promised == 6.0

    def test_deposit_bounds_promises(self):
        book = Chequebook(owner=1, deposit=10.0)
        book.issue(2, 7.0)
        with pytest.raises(InsufficientFundsError):
            book.issue(3, 4.0)

    def test_zero_deposit_always_bounces(self):
        book = Chequebook(owner=1, deposit=0.0)
        with pytest.raises(InsufficientFundsError):
            book.issue(2, 0.001)

    def test_self_issue_rejected(self):
        with pytest.raises(SettlementError):
            Chequebook(owner=1).issue(1, 1.0)


class TestChequebookCash:
    def test_cash_pays_increment(self):
        book = Chequebook(owner=1)
        cheque = book.issue(2, 5.0)
        assert book.cash(cheque) == 5.0
        assert book.total_cashed == 5.0
        assert book.outstanding == 0.0

    def test_outdated_cheque_pays_nothing(self):
        book = Chequebook(owner=1)
        old = book.issue(2, 5.0)
        new = book.issue(2, 3.0)
        assert book.cash(new) == 8.0
        assert book.cash(old) == 0.0

    def test_wrong_book_rejected(self):
        book = Chequebook(owner=1)
        cheque = book.issue(2, 5.0)
        with pytest.raises(SettlementError, match="chequebook of"):
            Chequebook(owner=9).cash(cheque)

    def test_forged_amount_rejected(self):
        book = Chequebook(owner=1)
        book.issue(2, 5.0)
        forged = Cheque(issuer=1, beneficiary=2, cumulative_amount=50.0,
                        serial=7)
        with pytest.raises(SettlementError, match="exceeds"):
            book.cash(forged)


class TestSettlementService:
    def test_settle_clears_debt_and_pays(self):
        ledger = SwapLedger()
        service = SettlementService(ledger)
        ledger.record_service(provider=1, consumer=2, units=10.0)
        service.settle(payer=2, payee=1, amount=10.0)
        assert ledger.balance(1, 2) == pytest.approx(0.0)
        assert ledger.income[1] == 10.0
        assert service.stats.cheques_issued == 1
        assert service.stats.cheques_cashed == 1
        assert service.stats.value_settled == 10.0

    def test_settle_direct_leaves_channel_alone(self):
        ledger = SwapLedger()
        service = SettlementService(ledger)
        service.settle_direct(payer=2, payee=1, amount=4.0)
        assert ledger.balance(1, 2) == 0.0
        assert ledger.income[1] == 4.0

    def test_transaction_fees_tracked(self):
        ledger = SwapLedger()
        service = SettlementService(ledger, transaction_fee=0.5)
        service.settle_direct(2, 1, 4.0)
        service.settle_direct(3, 1, 4.0)
        assert service.stats.fees_paid == 1.0
        assert service.stats.mean_cheque_value() == 4.0

    def test_default_deposit_applied(self):
        ledger = SwapLedger()
        service = SettlementService(ledger, default_deposit=5.0)
        service.settle_direct(2, 1, 4.0)
        with pytest.raises(InsufficientFundsError):
            service.settle_direct(2, 3, 4.0)

    def test_set_deposit(self):
        ledger = SwapLedger()
        service = SettlementService(ledger)
        service.set_deposit(2, 0.0)
        with pytest.raises(InsufficientFundsError):
            service.settle_direct(2, 1, 1.0)

    def test_mean_cheque_value_empty(self):
        service = SettlementService(SwapLedger())
        assert service.stats.mean_cheque_value() == 0.0
