"""Unit tests for overhead accounting (repro.core.overhead)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overhead import OverheadModel, overhead_report
from repro.errors import ConfigurationError


@pytest.fixture()
def vectors(small_overlay):
    n = len(small_overlay)
    income = np.linspace(0.0, 10.0, n)
    paid = np.arange(n, dtype=np.int64)
    return income, paid


class TestOverheadModel:
    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(transaction_cost=-1.0)
        with pytest.raises(ConfigurationError):
            OverheadModel(keepalive_cost_per_connection=-0.1)

    def test_zero_cost_model_is_free(self, small_overlay, vectors):
        income, paid = vectors
        model = OverheadModel(
            keepalive_cost_per_connection=0.0,
            transaction_cost=0.0,
            channel_state_cost=0.0,
        )
        report = overhead_report(small_overlay, income, paid, model)
        assert np.allclose(report.net_income, income)
        assert report.underwater_nodes == 0
        assert report.overhead_share() == 0.0


class TestOverheadReport:
    def test_costs_scale_with_degree(self, small_overlay, vectors):
        income, paid = vectors
        report = overhead_report(small_overlay, income, paid)
        degrees = np.array(
            [len(small_overlay.table(a)) for a in small_overlay.addresses]
        )
        expected = degrees * OverheadModel().keepalive_cost_per_connection
        assert np.allclose(report.connection_cost, expected)

    def test_transactions_capped_by_paid_chunks(self, small_overlay):
        n = len(small_overlay)
        income = np.ones(n)
        paid = np.zeros(n, dtype=np.int64)  # nobody was ever paid
        report = overhead_report(small_overlay, income, paid)
        assert np.all(report.transaction_cost == 0.0)

    def test_underwater_detection(self, small_overlay):
        n = len(small_overlay)
        income = np.zeros(n)          # no income, positive costs
        paid = np.ones(n, dtype=np.int64)
        report = overhead_report(small_overlay, income, paid)
        assert report.underwater_nodes == n
        assert report.mean_net_income() < 0

    def test_overhead_share_zero_income(self, small_overlay):
        n = len(small_overlay)
        report = overhead_report(
            small_overlay, np.zeros(n), np.zeros(n, dtype=np.int64)
        )
        assert report.overhead_share() == 0.0

    def test_shape_mismatch_rejected(self, small_overlay):
        with pytest.raises(ValueError):
            overhead_report(
                small_overlay, np.zeros(3), np.zeros(3, dtype=np.int64)
            )

    def test_summary_mentions_underwater(self, small_overlay, vectors):
        income, paid = vectors
        text = overhead_report(small_overlay, income, paid).summary()
        assert "underwater" in text
