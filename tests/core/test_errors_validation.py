"""Tests for the error hierarchy and validation helpers."""

from __future__ import annotations

import pytest

from repro import errors
from repro._validation import (
    require,
    require_fraction,
    require_in_range,
    require_int,
    require_non_empty,
    require_non_negative,
    require_positive,
)
from repro.errors import ConfigurationError, ReproError


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "ConfigurationError", "AddressError", "OverlayError",
        "RoutingError", "AccountingError", "SettlementError",
        "InsufficientFundsError", "SimulationError", "ExperimentError",
        "WorkloadError",
    ])
    def test_all_derive_from_repro_error(self, name):
        error_class = getattr(errors, name)
        assert issubclass(error_class, ReproError)

    def test_address_error_is_configuration_error(self):
        assert issubclass(errors.AddressError, ConfigurationError)

    def test_insufficient_funds_is_settlement_error(self):
        assert issubclass(
            errors.InsufficientFundsError, errors.SettlementError
        )

    def test_routing_error_carries_context(self):
        error = errors.RoutingError("stuck", origin=1, target=2)
        assert error.origin == 1
        assert error.target == 2

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise errors.WorkloadError("bad workload")


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")
        with pytest.raises(ConfigurationError):
            require_positive(-1, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.001, "x")

    def test_require_int_rejects_bools_and_floats(self):
        assert require_int(5, "x") == 5
        with pytest.raises(ConfigurationError):
            require_int(True, "x")
        with pytest.raises(ConfigurationError):
            require_int(5.0, "x")

    def test_require_in_range(self):
        require_in_range(5, 0, 10, "x")
        with pytest.raises(ConfigurationError, match=r"\[0, 10\]"):
            require_in_range(11, 0, 10, "x")

    def test_require_fraction(self):
        require_fraction(0.0, "x")
        require_fraction(1.0, "x")
        with pytest.raises(ConfigurationError):
            require_fraction(1.01, "x")

    def test_require_non_empty(self):
        require_non_empty([1], "items")
        with pytest.raises(ConfigurationError, match="empty"):
            require_non_empty([], "items")
        # Works on plain iterables without len().
        require_non_empty(iter([1]), "items")
        with pytest.raises(ConfigurationError):
            require_non_empty(iter([]), "items")
