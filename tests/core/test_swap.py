"""Unit tests for the SWAP ledger (repro.core.swap)."""

from __future__ import annotations

import pytest

from repro.core.swap import SwapChannel, SwapLedger, SwapThresholds
from repro.errors import AccountingError, ConfigurationError


class TestSwapThresholds:
    def test_defaults_ordered(self):
        thresholds = SwapThresholds()
        assert thresholds.payment <= thresholds.disconnect

    def test_disconnect_below_payment_rejected(self):
        with pytest.raises(AccountingError):
            SwapThresholds(payment=100, disconnect=50)

    @pytest.mark.parametrize("payment", [0, -5])
    def test_nonpositive_rejected(self, payment):
        with pytest.raises(ConfigurationError):
            SwapThresholds(payment=payment, disconnect=100)


class TestSwapChannel:
    def test_endpoint_ordering_enforced(self):
        with pytest.raises(AccountingError):
            SwapChannel(low=5, high=5)
        with pytest.raises(AccountingError):
            SwapChannel(low=9, high=3)

    def test_provide_updates_balance_sign(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(1, 10.0)
        assert channel.balance_of(1) == 10.0   # 2 owes 1
        assert channel.balance_of(2) == -10.0

        channel.provide(2, 4.0)
        assert channel.balance_of(1) == 6.0

    def test_transferred_units_accumulate_both_ways(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(1, 10.0)
        channel.provide(2, 4.0)
        assert channel.transferred_units == 14.0

    def test_non_member_rejected(self):
        channel = SwapChannel(low=1, high=2)
        with pytest.raises(AccountingError, match="not on channel"):
            channel.provide(3, 1.0)
        with pytest.raises(AccountingError):
            channel.balance_of(3)

    def test_counterparty(self):
        channel = SwapChannel(low=1, high=2)
        assert channel.counterparty(1) == 2
        assert channel.counterparty(2) == 1

    def test_settle_reduces_debt(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(1, 10.0)
        channel.settle(creditor=1, amount=6.0)
        assert channel.balance_of(1) == pytest.approx(4.0)

    def test_settle_beyond_debt_rejected(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(1, 5.0)
        with pytest.raises(AccountingError, match="only"):
            channel.settle(creditor=1, amount=6.0)

    def test_settle_when_owed_nothing_rejected(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(2, 5.0)  # 1 owes 2
        with pytest.raises(AccountingError):
            channel.settle(creditor=1, amount=1.0)

    def test_amortize_moves_toward_zero(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(1, 5.0)
        forgiven = channel.amortize(2.0)
        assert forgiven == 2.0
        assert channel.balance_of(1) == 3.0

    def test_amortize_caps_at_balance(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(2, 1.5)
        forgiven = channel.amortize(10.0)
        assert forgiven == 1.5
        assert channel.balance == 0.0

    def test_amortize_negative_balance(self):
        channel = SwapChannel(low=1, high=2)
        channel.provide(2, 5.0)  # balance -5
        channel.amortize(2.0)
        assert channel.balance_of(2) == pytest.approx(3.0)


class TestSwapLedgerChannels:
    def test_channel_created_on_first_use(self):
        ledger = SwapLedger()
        channel = ledger.channel(7, 3)
        assert channel.endpoints() == (3, 7)
        assert ledger.channel(3, 7) is channel

    def test_self_channel_rejected(self):
        with pytest.raises(AccountingError):
            SwapLedger().channel(4, 4)

    def test_balance_of_untouched_pair_is_zero(self):
        assert SwapLedger().balance(1, 2) == 0.0


class TestSwapLedgerRecording:
    def test_record_service_updates_aggregates(self):
        ledger = SwapLedger()
        ledger.record_service(provider=1, consumer=2, units=3.0)
        assert ledger.service_provided[1] == 3.0
        assert ledger.service_consumed[2] == 3.0
        assert ledger.balance(1, 2) == 3.0

    def test_would_disconnect(self):
        ledger = SwapLedger(SwapThresholds(payment=10, disconnect=15))
        ledger.record_service(1, 2, 14.0)
        assert not ledger.would_disconnect(1, 2, 1.0)
        assert ledger.would_disconnect(1, 2, 2.0)

    def test_settlement_due(self):
        ledger = SwapLedger(SwapThresholds(payment=10, disconnect=15))
        ledger.record_service(1, 2, 9.0)
        assert ledger.settlement_due(1, 2) == 0.0
        ledger.record_service(1, 2, 2.0)
        assert ledger.settlement_due(1, 2) == pytest.approx(11.0)

    def test_pay_settles_and_tracks_income(self):
        ledger = SwapLedger()
        ledger.record_service(1, 2, 10.0)
        ledger.pay(payer=2, payee=1, amount=10.0)
        assert ledger.balance(1, 2) == pytest.approx(0.0)
        assert ledger.income[1] == 10.0
        assert ledger.expenditure[2] == 10.0

    def test_pay_direct_bypasses_channel(self):
        ledger = SwapLedger()
        ledger.pay_direct(payer=2, payee=1, amount=5.0)
        assert ledger.balance(1, 2) == 0.0
        assert ledger.income[1] == 5.0
        assert ledger.service_provided[1] == 5.0
        assert ledger.service_consumed[2] == 5.0

    def test_pay_direct_self_rejected(self):
        with pytest.raises(AccountingError):
            SwapLedger().pay_direct(1, 1, 1.0)

    def test_record_forwarded_chunk(self):
        ledger = SwapLedger()
        ledger.record_forwarded_chunk(5)
        ledger.record_forwarded_chunk(5, as_first_hop=True)
        assert ledger.chunks_forwarded[5] == 2
        assert ledger.chunks_as_first_hop[5] == 1


class TestAmortizeAll:
    def test_amortizes_every_channel(self):
        ledger = SwapLedger()
        ledger.record_service(1, 2, 4.0)
        ledger.record_service(3, 4, 1.0)
        forgiven = ledger.amortize_all(2.0)
        assert forgiven == pytest.approx(3.0)
        assert ledger.balance(1, 2) == pytest.approx(2.0)
        assert ledger.balance(3, 4) == 0.0
        assert ledger.total_amortized == pytest.approx(3.0)

    def test_negative_units_rejected(self):
        with pytest.raises(ConfigurationError):
            SwapLedger().amortize_all(-1.0)


class TestVectors:
    def test_aligned_with_node_list(self):
        ledger = SwapLedger()
        ledger.pay_direct(2, 1, 5.0)
        ledger.record_forwarded_chunk(1, as_first_hop=True)
        ledger.record_forwarded_chunk(3)
        nodes = [1, 2, 3]
        assert ledger.income_vector(nodes) == [5.0, 0.0, 0.0]
        assert ledger.forwarded_vector(nodes) == [1, 0, 1]
        assert ledger.first_hop_vector(nodes) == [1, 0, 0]
