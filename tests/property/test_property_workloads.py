"""Property-based tests for workload generation (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kademlia.address import AddressSpace
from repro.workloads.distributions import OriginatorPool, UniformFileSize
from repro.workloads.generators import DownloadWorkload


@st.composite
def workloads(draw):
    n_files = draw(st.integers(min_value=1, max_value=30))
    share = draw(st.floats(min_value=0.05, max_value=1.0))
    low = draw(st.integers(min_value=1, max_value=20))
    high = draw(st.integers(min_value=low, max_value=low + 30))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return DownloadWorkload(
        n_files=n_files,
        originators=OriginatorPool(share=share),
        file_size=UniformFileSize(low=low, high=high),
        seed=seed,
    )


NODES = np.arange(64, dtype=np.uint64)
SPACE = AddressSpace(10)


class TestWorkloadProperties:
    @given(workloads())
    @settings(max_examples=60)
    def test_every_event_well_formed(self, workload):
        events = workload.materialize(NODES, SPACE)
        assert len(events) == workload.n_files
        pool_size = workload.originators.pool_size(len(NODES))
        originators = set()
        for event in events:
            originators.add(event.originator)
            assert event.originator in NODES
            assert workload.file_size.low <= event.n_chunks
            assert event.n_chunks <= workload.file_size.high
            assert event.chunk_addresses.max() < SPACE.size
        assert len(originators) <= pool_size

    @given(workloads())
    @settings(max_examples=30)
    def test_streaming_equals_materialized(self, workload):
        streamed = list(workload.events(NODES, SPACE))
        materialized = workload.materialize(NODES, SPACE)
        for a, b in zip(streamed, materialized):
            assert a.originator == b.originator
            assert np.array_equal(a.chunk_addresses, b.chunk_addresses)

    @given(workloads(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_pool_seed_fixes_the_pool(self, workload, pool_seed):
        import dataclasses

        a = dataclasses.replace(workload, pool_seed=pool_seed, seed=1)
        b = dataclasses.replace(workload, pool_seed=pool_seed, seed=2)
        pool_a = {e.originator for e in a.events(NODES, SPACE)}
        pool_b = {e.originator for e in b.events(NODES, SPACE)}
        # Different traffic seeds, same eligible pool: the union stays
        # within a single pool-sized subset.
        pool_size = workload.originators.pool_size(len(NODES))
        assert len(pool_a | pool_b) <= pool_size
