"""Property-based cross-checks between the simulator backends."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.fast import FastSimulation, FastSimulationConfig
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.kademlia.routing import Router
from repro.swarm.node import SwarmNode
from repro.swarm.retrieval import RetrievalProtocol


@st.composite
def fast_configs(draw):
    bits = draw(st.integers(min_value=8, max_value=12))
    n_nodes = draw(st.integers(min_value=20, max_value=80))
    return FastSimulationConfig(
        n_nodes=n_nodes,
        bits=bits,
        bucket_size=draw(st.sampled_from([2, 4, 8])),
        originator_share=draw(st.sampled_from([0.2, 0.5, 1.0])),
        n_files=draw(st.integers(min_value=1, max_value=8)),
        file_min=2,
        file_max=10,
        overlay_seed=draw(st.integers(min_value=0, max_value=50)),
        workload_seed=draw(st.integers(min_value=0, max_value=50)),
        pricing=draw(st.sampled_from(["xor", "proximity", "flat"])),
    )


class TestFastSimulationInvariants:
    @given(fast_configs())
    @settings(max_examples=25, deadline=None)
    def test_accounting_identities_hold_for_any_config(self, config):
        result = FastSimulation(config).run()
        # Forwarded chunk-hops equal total hops.
        assert result.forwarded.sum() == result.total_hops
        # One paid first hop per non-local chunk.
        assert result.first_hop.sum() == result.chunks - result.local_hits
        # Money conservation.
        assert result.income.sum() == float(
            np.float64(result.expenditure.sum())
        )
        # Hop histogram covers every chunk.
        assert sum(result.hop_histogram.values()) == result.chunks
        # First-hop counts never exceed forwarded counts.
        assert np.all(result.first_hop <= result.forwarded)


@st.composite
def overlay_and_traffic(draw):
    bits = draw(st.integers(min_value=7, max_value=10))
    n_nodes = draw(st.integers(min_value=10, max_value=50))
    overlay_seed = draw(st.integers(min_value=0, max_value=50))
    traffic_seed = draw(st.integers(min_value=0, max_value=50))
    return (
        OverlayConfig(n_nodes=n_nodes, bits=bits, seed=overlay_seed),
        traffic_seed,
    )


class TestRetrievalMatchesRouter:
    @given(overlay_and_traffic())
    @settings(max_examples=20, deadline=None)
    def test_cacheless_retrieval_paths_equal_router_paths(self, parts):
        overlay_config, traffic_seed = parts
        overlay = Overlay.build(overlay_config)
        nodes = {
            address: SwarmNode(address, overlay.table(address))
            for address in overlay.addresses
        }
        protocol = RetrievalProtocol(
            overlay, nodes, implicit_storage=True
        )
        router = Router(overlay)
        rng = np.random.default_rng(traffic_seed)
        for _ in range(15):
            origin = int(rng.choice(overlay.address_array()))
            target = int(rng.integers(0, overlay.space.size))
            assert (
                protocol.retrieve(origin, target).route.path
                == router.route(origin, target).path
            )
