"""Merge algebra of the streaming aggregator, property-checked.

The two laws ``repro-swarm serve`` and the distributed sweep shards
rely on: folding a stream of micro-epoch results is invariant to how
the stream is cut into batches, and :meth:`StreamingAggregator.merge`
is associative. Incomes are drawn as dyadic rationals (k / 65536) —
the engine's actual price lattice — so float sums are exact and both
laws hold with ``==``, not approximately.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import StreamingAggregator

N_NODES = 5
ADDRS = np.arange(3, 3 + N_NODES, dtype=np.int64)


def dyadic_vector(draw, elements):
    """A per-node float vector off the engine's dyadic price lattice."""
    ticks = draw(elements)
    return np.asarray(ticks, dtype=np.float64) / 65536.0


@st.composite
def micro_results(draw):
    """One micro-epoch's worth of absorbed fields."""
    counts = st.lists(
        st.integers(min_value=0, max_value=50),
        min_size=N_NODES, max_size=N_NODES,
    )
    ticks = st.lists(
        st.integers(min_value=0, max_value=1 << 20),
        min_size=N_NODES, max_size=N_NODES,
    )
    chunks = draw(st.integers(min_value=0, max_value=200))
    unavailable = draw(st.integers(min_value=0, max_value=chunks))
    histogram = draw(st.dictionaries(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=40),
        max_size=4,
    ))
    latency = draw(st.one_of(
        st.none(),
        st.lists(
            st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            max_size=20,
        ).map(np.asarray),
    ))
    return SimpleNamespace(
        node_addresses=ADDRS,
        forwarded=np.asarray(draw(counts), dtype=np.int64),
        first_hop=np.asarray(draw(counts), dtype=np.int64),
        income=dyadic_vector(draw, ticks),
        expenditure=dyadic_vector(draw, ticks),
        files=draw(st.integers(min_value=0, max_value=30)),
        chunks=chunks,
        total_hops=draw(st.integers(min_value=0, max_value=500)),
        local_hits=draw(st.integers(min_value=0, max_value=50)),
        fallbacks=draw(st.integers(min_value=0, max_value=50)),
        cache_hits=draw(st.integers(min_value=0, max_value=50)),
        unavailable=unavailable,
        hop_histogram=histogram,
        latency_ms=latency,
    )


def aggregate(results):
    agg = StreamingAggregator(ADDRS)
    for result in results:
        agg.absorb(result)
    return agg


def assert_equal_state(a: StreamingAggregator,
                       b: StreamingAggregator) -> None:
    """Full-state exact equality: vectors, counters, sketch buckets."""
    np.testing.assert_array_equal(a.forwarded, b.forwarded)
    np.testing.assert_array_equal(a.first_hop, b.first_hop)
    np.testing.assert_array_equal(a.income, b.income)
    np.testing.assert_array_equal(a.expenditure, b.expenditure)
    assert a.files == b.files
    assert a.chunks == b.chunks
    assert a.total_hops == b.total_hops
    assert a.local_hits == b.local_hits
    assert a.fallbacks == b.fallbacks
    assert a.cache_hits == b.cache_hits
    assert a.unavailable == b.unavailable
    assert a.hop_histogram == b.hop_histogram
    assert a.epochs == b.epochs
    assert a.latency.count == b.latency.count
    assert a.latency.zero_count == b.latency.zero_count
    assert a.latency.buckets == b.latency.buckets


@settings(max_examples=60, deadline=None)
@given(
    results=st.lists(micro_results(), min_size=1, max_size=8),
    data=st.data(),
)
def test_batch_size_invariance(results, data):
    """Any split of the stream into shards folds to the same state."""
    cut = data.draw(
        st.integers(min_value=0, max_value=len(results)), label="cut"
    )
    whole = aggregate(results)
    sharded = aggregate(results[:cut]).merge(aggregate(results[cut:]))
    assert_equal_state(whole, sharded)


@settings(max_examples=60, deadline=None)
@given(
    first=st.lists(micro_results(), max_size=4),
    second=st.lists(micro_results(), max_size=4),
    third=st.lists(micro_results(), max_size=4),
)
def test_merge_is_associative(first, second, third):
    a, b, c = (aggregate(shard) for shard in (first, second, third))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert_equal_state(left, right)


@settings(max_examples=40, deadline=None)
@given(results=st.lists(micro_results(), min_size=1, max_size=6))
def test_merge_with_empty_is_identity(results):
    agg = aggregate(results)
    merged = agg.merge(StreamingAggregator(ADDRS))
    assert_equal_state(agg, merged)
