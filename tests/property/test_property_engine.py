"""Property-based tests for the simulation engine (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.des import EventScheduler
from repro.engine.simulation import SimulationConfig, Simulator
from repro.engine.state import Block, Model


class TestDesProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0),
                    min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time(self, times):
        scheduler = EventScheduler()
        fired: list[float] = []
        for time in times:
            scheduler.schedule_at(time, lambda s, t: fired.append(t))
        scheduler.run_all()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=100.0))
    def test_run_until_partitions_events(self, times, horizon):
        scheduler = EventScheduler()
        for time in times:
            scheduler.schedule_at(time, lambda s, t: None)
        fired = scheduler.run_until(horizon)
        assert fired == sum(1 for t in times if t <= horizon)
        assert len(scheduler) == len(times) - fired


class TestSimulatorProperties:
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_for_any_config(self, timesteps, runs, seed):
        model = Model(
            initial_state={"v": 0.0},
            blocks=(
                Block(
                    name="noise",
                    updates={
                        "v": lambda c, s: c.state["v"] + c.rng.random()
                    },
                ),
            ),
        )
        config = SimulationConfig(timesteps=timesteps, runs=runs, seed=seed)
        a = Simulator(model).run(config)
        b = Simulator(model).run(config)
        for run in range(runs):
            assert a.series("v", run=run) == b.series("v", run=run)

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_snapshot_count(self, timesteps):
        model = Model(
            initial_state={"x": 0},
            blocks=(
                Block(name="inc",
                      updates={"x": lambda c, s: c.state["x"] + 1}),
            ),
        )
        results = Simulator(model).run(SimulationConfig(timesteps=timesteps))
        # Initial snapshot plus one per timestep.
        assert len(results) == timesteps + 1
        assert results.final_state(0)["x"] == timesteps
