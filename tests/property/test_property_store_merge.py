"""Property tests for shard-store merging.

:meth:`SweepStore.merge` is the distributed sweep's correctness
anchor, so its algebra is pinned over synthesized shard contents:

* **commutative** and **associative** — shard arrival order and
  grouping can never change the merged bytes;
* **idempotent** — merging a shard with itself is that shard;
* **partition-recomposition** — however a store's records are split
  across shards (including overlaps), the merge reproduces the whole
  store byte-for-byte;
* spec mismatches always raise the *named* error
  (:class:`~repro.errors.StoreMergeError`), never mixed results.
"""

from __future__ import annotations

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.backends.config import FastSimulationConfig
from repro.errors import StoreMergeError
from repro.sweeps import SweepSpec, SweepStore

TINY = FastSimulationConfig(
    n_nodes=40, bits=10, n_files=4, file_min=2, file_max=4
)
SPEC = SweepSpec(base=TINY, grid={"bucket_size": (4, 8)},
                 backends=("fast",), seeds=3)
POINTS = SPEC.points()

metric_values = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
)


def success_record(point, metrics) -> dict:
    return {
        "point_id": point.point_id, "backend": point.backend,
        "overrides": dict(point.overrides), "replica": point.replica,
        "workload_seed": point.workload_seed, "metrics": metrics,
    }


def failure_record(point, attempts) -> dict:
    return {
        "point_id": point.point_id, "backend": point.backend,
        "overrides": dict(point.overrides), "replica": point.replica,
        "workload_seed": point.workload_seed, "kind": "exception",
        "error": f"E: boom after {attempts}", "digest": "d" * 16,
        "attempts": attempts,
    }


@st.composite
def store_contents(draw):
    """Synthesize one sweep's settled records: successes + failures."""
    outcomes = draw(st.lists(
        st.sampled_from(["success", "failure", "missing"]),
        min_size=len(POINTS), max_size=len(POINTS),
    ))
    successes, failures = [], []
    for point, outcome in zip(POINTS, outcomes):
        if outcome == "success":
            chunks = draw(metric_values)
            successes.append(
                success_record(point, {"chunks": chunks})
            )
        elif outcome == "failure":
            failures.append(
                failure_record(point, draw(st.integers(1, 5)))
            )
    return successes, failures


def make_store(successes, failures, name="store.json") -> SweepStore:
    store = SweepStore(Path(name), SPEC)
    for record in successes:
        store.add(dict(record))
    for record in failures:
        store.add_failure(dict(record))
    return store


def store_bytes(store: SweepStore) -> bytes:
    # Compare in-memory stores by their canonical serialization,
    # dropping provenance (it records *who* saved, not what ran).
    document = store.to_json()
    document.pop("provenance", None)
    return json.dumps(document, sort_keys=True).encode()


@st.composite
def sharded_store(draw):
    """A whole store plus an arbitrary (overlapping) sharding of it."""
    successes, failures = draw(store_contents())
    n_shards = draw(st.integers(min_value=1, max_value=4))
    shards = [([], []) for _ in range(n_shards)]
    for record in successes:
        owners = draw(st.lists(st.integers(0, n_shards - 1),
                               min_size=1, max_size=n_shards,
                               unique=True))
        for owner in owners:
            shards[owner][0].append(record)
    for record in failures:
        # Failure records may repeat across shards only at differing
        # attempt counts (a re-leased retry) or identically; model
        # the identical-duplicate case, the executor's actual overlap.
        owners = draw(st.lists(st.integers(0, n_shards - 1),
                               min_size=1, max_size=n_shards,
                               unique=True))
        for owner in owners:
            shards[owner][1].append(record)
    return (successes, failures), shards


@given(contents=store_contents())
@settings(max_examples=30, deadline=None)
def test_merge_is_idempotent(contents):
    successes, failures = contents
    shard = make_store(successes, failures)
    merged = SweepStore.merge([shard, shard])
    assert store_bytes(merged) == store_bytes(shard)


@given(data=sharded_store())
@settings(max_examples=30, deadline=None)
def test_merge_is_commutative(data):
    (_, _), shards = data
    stores = [make_store(s, f, f"shard-{i}.json")
              for i, (s, f) in enumerate(shards)]
    forward = SweepStore.merge(stores)
    backward = SweepStore.merge(list(reversed(stores)))
    assert store_bytes(forward) == store_bytes(backward)


@given(data=sharded_store())
@settings(max_examples=30, deadline=None)
def test_merge_is_associative(data):
    (_, _), shards = data
    stores = [make_store(s, f, f"shard-{i}.json")
              for i, (s, f) in enumerate(shards)]
    if len(stores) < 3:
        stores = stores + stores  # pad; merge tolerates duplicates
    left = SweepStore.merge(
        [SweepStore.merge(stores[:2]), *stores[2:]]
    )
    right = SweepStore.merge(
        [stores[0], SweepStore.merge(stores[1:])]
    )
    assert store_bytes(left) == store_bytes(right)


@given(data=sharded_store())
@settings(max_examples=30, deadline=None)
def test_partition_merge_reproduces_the_whole_store(data):
    (successes, failures), shards = data
    whole = make_store(successes, failures)
    stores = [make_store(s, f, f"shard-{i}.json")
              for i, (s, f) in enumerate(shards)]
    merged = SweepStore.merge(stores)
    assert store_bytes(merged) == store_bytes(whole)


@given(contents=store_contents(), seeds=st.integers(4, 8))
@settings(max_examples=10, deadline=None)
def test_spec_mismatch_raises_the_named_error(contents, seeds):
    successes, failures = contents
    shard = make_store(successes, failures)
    other = SweepStore(Path("other.json"),
                       SweepSpec(base=TINY,
                                 grid={"bucket_size": (4, 8)},
                                 backends=("fast",), seeds=seeds))
    with pytest.raises(StoreMergeError):
        SweepStore.merge([shard, other])
