"""Property-based tests for pricing strategies (hypothesis)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.pricing import (
    FlatPricing,
    ProximityStepPricing,
    XorDistancePricing,
)
from repro.kademlia.address import AddressSpace

BITS = 12
addresses = st.integers(min_value=0, max_value=(1 << BITS) - 1)
space = AddressSpace(BITS)


class TestPricingInvariants:
    @given(addresses, addresses)
    def test_all_prices_strictly_positive(self, server, chunk):
        for pricing in (
            XorDistancePricing(space),
            ProximityStepPricing(space),
            FlatPricing(),
        ):
            assert pricing.price(server, chunk) > 0

    @given(addresses, addresses, st.floats(min_value=0.1, max_value=100))
    def test_xor_price_scales_with_base(self, server, chunk, base):
        unit = XorDistancePricing(space, base=1.0).price(server, chunk)
        scaled = XorDistancePricing(space, base=base).price(server, chunk)
        assert abs(scaled - unit * base) < 1e-9

    @given(addresses, addresses)
    def test_xor_price_bounded_by_base(self, server, chunk):
        assert XorDistancePricing(space, base=2.0).price(server, chunk) <= 2.0

    @given(addresses, addresses, addresses)
    def test_xor_price_monotone_in_distance(self, server_a, server_b, chunk):
        pricing = XorDistancePricing(space)
        distance_a = server_a ^ chunk
        distance_b = server_b ^ chunk
        price_a = pricing.price(server_a, chunk)
        price_b = pricing.price(server_b, chunk)
        if distance_a > distance_b:
            assert price_a >= price_b
        elif distance_a < distance_b:
            assert price_a <= price_b

    @given(addresses, addresses)
    def test_proximity_price_decreases_with_shared_prefix(self, server,
                                                          chunk):
        pricing = ProximityStepPricing(space)
        po = space.proximity(server, chunk)
        expected = max(BITS - po, 1) * 1.0
        assert pricing.price(server, chunk) == expected

    @given(addresses, addresses)
    def test_prices_deterministic(self, server, chunk):
        pricing = XorDistancePricing(space)
        assert pricing.price(server, chunk) == pricing.price(server, chunk)
