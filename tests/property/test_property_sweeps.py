"""Property tests for replica-seed derivation and sweep aggregation.

Two invariants the sweep engine's parallel correctness rests on:

* :func:`repro.sweeps.replica_seeds` never hands two replicas the
  same workload seed (distinct streams), and each replica's seed is a
  pure function of ``(entropy, replica)`` — independent of how many
  replicas are requested;
* :func:`repro.sweeps.aggregate_records` is invariant to the order
  the per-point records arrive in (mean/std/CI are computed after
  sorting by replica), so executor scheduling can never change a
  summary bit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.config import FastSimulationConfig
from repro.sweeps import (
    SweepSpec,
    aggregate_records,
    replica_seed,
    replica_seeds,
)

entropies = st.integers(min_value=0, max_value=2**64 - 1)

metric_values = st.floats(
    min_value=-1e9, max_value=1e9,
    allow_nan=False, allow_infinity=False,
)

TINY = FastSimulationConfig(
    n_nodes=40, bits=10, n_files=4, file_min=2, file_max=4
)


@settings(max_examples=50, deadline=None)
@given(entropy=entropies, n=st.integers(min_value=2, max_value=128))
def test_replica_seed_streams_never_collide(entropy, n):
    seeds = replica_seeds(entropy, n)
    assert len(set(seeds)) == n
    # And the RNG streams they seed are genuinely distinct, not just
    # distinct integers.
    first_draws = {
        int(np.random.default_rng(seed).integers(0, 2**63))
        for seed in seeds[: min(n, 8)]
    }
    assert len(first_draws) == min(n, 8)


@settings(max_examples=50, deadline=None)
@given(entropy=entropies, n=st.integers(min_value=1, max_value=64),
       extra=st.integers(min_value=1, max_value=64))
def test_replica_seed_is_prefix_stable(entropy, n, extra):
    # Requesting more replicas must not disturb earlier ones; this is
    # what lets a resumed sweep with a raised seed count keep every
    # already-computed point.
    assert replica_seeds(entropy, n + extra)[:n] == replica_seeds(entropy, n)
    assert replica_seed(entropy, n - 1) == replica_seeds(entropy, n)[n - 1]


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(metric_values, min_size=1, max_size=16),
    data=st.data(),
)
def test_aggregation_invariant_to_replica_order(values, data):
    spec = SweepSpec(base=TINY, seeds=len(values))
    records = [
        {
            "point_id": f"fast||r{replica}",
            "backend": "fast",
            "overrides": {},
            "replica": replica,
            "workload_seed": replica,
            "metrics": {"metric": value},
        }
        for replica, value in enumerate(values)
    ]
    shuffled = data.draw(st.permutations(records))

    canonical = aggregate_records(spec, records)
    reordered = aggregate_records(spec, shuffled)
    assert canonical == reordered  # exact, bit-for-bit float equality

    summary = canonical[0].metrics["metric"]
    assert summary.n == len(values)
    if len(values) >= 2:
        assert summary.low <= summary.mean <= summary.high
    else:
        assert summary.low == summary.mean == summary.high
