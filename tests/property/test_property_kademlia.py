"""Property-based tests for the Kademlia substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kademlia.address import bit_length_array, common_prefix_length
from repro.kademlia.overlay import Overlay, OverlayConfig
from repro.kademlia.routing import Router

BITS = 10
addresses = st.integers(min_value=0, max_value=(1 << BITS) - 1)


class TestXorMetricProperties:
    @given(addresses, addresses)
    def test_symmetry(self, a, b):
        assert a ^ b == b ^ a

    @given(addresses, addresses, addresses)
    def test_triangle_inequality(self, a, b, c):
        assert (a ^ c) <= (a ^ b) + (b ^ c)

    @given(addresses, addresses)
    def test_identity_of_indiscernibles(self, a, b):
        assert ((a ^ b) == 0) == (a == b)

    @given(addresses, addresses)
    def test_proximity_consistent_with_distance(self, a, b):
        # Higher proximity implies smaller distance (same first
        # differing bit dominates the XOR value).
        po = common_prefix_length(a, b, BITS)
        if a != b:
            assert (a ^ b) < (1 << (BITS - po))
            assert (a ^ b) >= (1 << (BITS - po - 1))

    @given(addresses, addresses, addresses)
    def test_proximity_triangle(self, a, b, c):
        # po(a,c) >= min(po(a,b), po(b,c)) - the ultrametric property.
        po_ab = common_prefix_length(a, b, BITS)
        po_bc = common_prefix_length(b, c, BITS)
        po_ac = common_prefix_length(a, c, BITS)
        assert po_ac >= min(po_ab, po_bc)


class TestBitLengthProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1),
                    min_size=1, max_size=50))
    def test_matches_python(self, values):
        array = np.array(values, dtype=np.uint64)
        assert bit_length_array(array).tolist() == [
            v.bit_length() for v in values
        ]


@st.composite
def overlay_configs(draw):
    bits = draw(st.integers(min_value=6, max_value=10))
    n_nodes = draw(st.integers(min_value=5, max_value=min(60, 1 << bits)))
    bucket_size = draw(st.sampled_from([1, 2, 4, 8]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    from repro.kademlia.buckets import BucketLimits

    return OverlayConfig(
        n_nodes=n_nodes, bits=bits,
        limits=BucketLimits.uniform(bucket_size), seed=seed,
    )


class TestRoutingProperties:
    @given(overlay_configs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_routes_always_reach_storer(self, config, traffic_seed):
        overlay = Overlay.build(config)
        router = Router(overlay)
        rng = np.random.default_rng(traffic_seed)
        for _ in range(20):
            origin = int(rng.choice(overlay.address_array()))
            target = int(rng.integers(0, overlay.space.size))
            route = router.route(origin, target)
            assert route.storer == overlay.closest_node(target)
            # Strict XOR progress along the path.
            distances = [node ^ target for node in route.path]
            assert distances == sorted(distances, reverse=True)

    @given(overlay_configs())
    @settings(max_examples=15, deadline=None)
    def test_overlay_build_is_deterministic(self, config):
        a = Overlay.build(config)
        b = Overlay.build(config)
        assert a.addresses == b.addresses
        sample = a.addresses[: min(5, len(a.addresses))]
        for owner in sample:
            assert a.table(owner).peers() == b.table(owner).peers()

    @given(overlay_configs())
    @settings(max_examples=15, deadline=None)
    def test_bucket_capacity_respected_outside_neighborhood(self, config):
        # Symmetric neighborhood edges may legitimately overfill a
        # shallow bucket of the counterparty, so the capacity
        # invariant is asserted on the asymmetric construction.
        import dataclasses

        asymmetric = dataclasses.replace(
            config, symmetric_neighborhood=False
        )
        overlay = Overlay.build(asymmetric)
        for owner in overlay.addresses[:10]:
            table = overlay.table(owner)
            depth = table.neighborhood_depth(config.neighborhood_min)
            for bucket in table.buckets:
                if bucket.index < depth:
                    capacity = config.limits.capacity(bucket.index)
                    assert len(bucket) <= capacity
