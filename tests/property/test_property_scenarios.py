"""Property tests: scenario composition laws and backend identity.

Satellite coverage for the scenario layer:

* ``Compose(a, b)`` epoch schedules merge deterministically (child
  order, concatenation, flattening, repeatability) for arbitrary
  stacks drawn from the whole scenario library;
* a single-scenario ``Compose`` is indistinguishable from the bare
  scenario — pinned structurally on schedules and behaviorally with
  exact counters on every registry backend where scenarios apply
  (the engines that reject or ignore dynamics are pinned to keep
  doing so).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    FastSimulationConfig,
    available_backends,
    get_backend,
    get_backend_class,
    run_simulation,
)
from repro.errors import ConfigurationError
from repro.scenarios import (
    Churn,
    Compose,
    DemandShift,
    FreeRiding,
    NodeJoin,
    PathCaching,
    ScenarioContext,
)

scenario_strategy = st.one_of(
    st.builds(
        Churn,
        rate=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**16),
        recompute=st.booleans(),
    ),
    st.builds(PathCaching, size=st.integers(0, 128)),
    st.builds(
        FreeRiding,
        fraction=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    ),
    st.builds(
        NodeJoin,
        fraction=st.floats(0.0, 1.0, allow_nan=False),
        waves=st.integers(0, 5),
        seed=st.integers(0, 2**16),
    ),
    st.builds(
        DemandShift,
        share=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    ),
)

context_strategy = st.builds(
    ScenarioContext,
    n_nodes=st.integers(2, 60),
    n_epochs=st.integers(0, 8),
    space_size=st.just(256),
)


@settings(max_examples=60, deadline=None)
@given(scenarios=st.lists(scenario_strategy, min_size=1, max_size=4),
       ctx=context_strategy)
def test_compose_merges_deterministically(scenarios, ctx):
    composed = Compose(*scenarios)
    merged = composed.schedule(ctx)
    assert merged == composed.schedule(ctx), "schedules must be pure"
    children = [s.schedule(ctx) for s in scenarios]
    assert len(merged) == ctx.n_epochs
    for epoch in range(ctx.n_epochs):
        expected = tuple(
            event for child in children for event in child[epoch]
        )
        assert merged[epoch] == expected


@settings(max_examples=60, deadline=None)
@given(scenarios=st.lists(scenario_strategy, min_size=1, max_size=3),
       extra=scenario_strategy, ctx=context_strategy)
def test_compose_flattens_associatively(scenarios, extra, ctx):
    nested = Compose(Compose(*scenarios), extra)
    flat = Compose(*scenarios, extra)
    assert nested == flat
    assert nested.schedule(ctx) == flat.schedule(ctx)
    assert nested.recompute_storers == flat.recompute_storers


@settings(max_examples=60, deadline=None)
@given(scenario=scenario_strategy, ctx=context_strategy)
def test_single_scenario_compose_equals_bare(scenario, ctx):
    wrapped = Compose(scenario)
    assert wrapped.schedule(ctx) == scenario.schedule(ctx)
    assert wrapped.recompute_storers == scenario.recompute_storers
    assert wrapped.spec() == scenario.spec()


# ----------------------------------------------------------------------
# Exact counters across the backend registry

BASE = dict(
    n_nodes=80, bits=10, bucket_size=4, originator_share=0.5,
    n_files=60, file_min=4, file_max=10, overlay_seed=3,
    workload_seed=9, batch_files=10, catalog_size=25,
)
SPEC = "churn:rate=0.2,recompute=true+caching:size=32"

#: Backends that route the workload through the scenario-capable
#: batched engine; the rest reject or ignore dynamics (pinned below).
SCENARIO_BACKENDS = ("fast", "flat", "freerider", "time")


@pytest.mark.parametrize("backend", SCENARIO_BACKENDS)
def test_wrapping_the_stack_in_compose_is_invisible(backend, monkeypatch):
    """Compose-of-one runs bit-identically to the bare stack."""
    config = FastSimulationConfig(**BASE, scenario=SPEC)
    bare = run_simulation(config, backend=backend)

    original = FastSimulationConfig.scenario_stack

    def wrapped_stack(self):
        stack = original(self)
        return stack if stack is None else Compose(stack)

    monkeypatch.setattr(
        FastSimulationConfig, "scenario_stack", wrapped_stack
    )
    wrapped = run_simulation(config, backend=backend)
    assert np.array_equal(bare.forwarded, wrapped.forwarded)
    assert np.array_equal(bare.first_hop, wrapped.first_hop)
    assert np.array_equal(bare.income, wrapped.income)
    assert np.array_equal(bare.expenditure, wrapped.expenditure)
    assert bare.hop_histogram == wrapped.hop_histogram
    assert bare.cache_hits == wrapped.cache_hits
    assert bare.unavailable == wrapped.unavailable


def test_registry_covers_every_backend_posture():
    """Each of the 8 backends either runs scenarios or refuses loudly."""
    config = FastSimulationConfig(**BASE, scenario=SPEC)
    seen = set()
    for name in available_backends():
        seen.add(name)
        if name in SCENARIO_BACKENDS:
            result = run_simulation(config, backend=name)
            assert result.cache_hits > 0
        elif name == "tit_for_tat":
            # Self-contained swarm: does not replay the workload, so
            # the scenario fields are inert by design.
            assert not get_backend_class(name).replays_workload
        elif name == "fast-perfile":
            with pytest.raises(ConfigurationError, match="batched"):
                get_backend(name).prepare(config).run()
        else:  # reference, filecoin
            with pytest.raises(ConfigurationError):
                get_backend(name).prepare(config)
    assert len(seen) == 8, "registry grew: classify the new backend here"
