"""Property-based tests for the fairness metrics (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import gini, gini_pairwise, lorenz_curve

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=80,
)

positive_values = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=80,
)


class TestGiniProperties:
    @given(values_strategy)
    def test_bounded_in_unit_interval(self, values):
        assert 0.0 <= gini(values) <= 1.0 + 1e-12

    @given(values_strategy)
    @settings(max_examples=60)
    def test_matches_pairwise_definition(self, values):
        assert abs(gini(values) - gini_pairwise(values)) < 1e-9

    @given(positive_values, st.floats(min_value=0.01, max_value=1000))
    def test_scale_invariance(self, values, scale):
        array = np.asarray(values)
        assert abs(gini(array) - gini(array * scale)) < 1e-9

    @given(positive_values)
    def test_permutation_invariance(self, values):
        array = np.asarray(values)
        reversed_order = array[::-1]
        assert abs(gini(array) - gini(reversed_order)) < 1e-12

    @given(positive_values)
    def test_replication_invariance(self, values):
        # Gini of a population equals Gini of the doubled population.
        array = np.asarray(values)
        doubled = np.concatenate([array, array])
        assert abs(gini(array) - gini(doubled)) < 1e-9

    @given(st.floats(min_value=0.01, max_value=100), st.integers(2, 50))
    def test_equal_population_is_zero(self, value, count):
        assert gini([value] * count) < 1e-12

    @given(st.integers(2, 60))
    def test_single_winner_maximum(self, count):
        values = [0.0] * (count - 1) + [1.0]
        assert abs(gini(values) - (count - 1) / count) < 1e-12

    @given(positive_values)
    def test_transfer_principle(self, values):
        # A transfer from a richer to a poorer peer (that does not
        # reverse their order) never increases the Gini.
        if len(values) < 2:
            return
        array = np.sort(np.asarray(values))
        poorest, richest = array[0], array[-1]
        transfer = (richest - poorest) / 4
        transferred = array.copy()
        transferred[0] += transfer
        transferred[-1] -= transfer
        assert gini(transferred) <= gini(array) + 1e-9


class TestLorenzProperties:
    @given(values_strategy)
    def test_endpoints_and_monotonicity(self, values):
        curve = lorenz_curve(values)
        assert curve.cumulative[0] == 0.0
        assert abs(curve.cumulative[-1] - 1.0) < 1e-9
        assert np.all(np.diff(curve.cumulative) >= -1e-12)

    @given(values_strategy)
    def test_never_above_diagonal(self, values):
        curve = lorenz_curve(values)
        assert np.all(curve.cumulative <= curve.population + 1e-9)

    @given(positive_values)
    @settings(max_examples=50)
    def test_curve_gini_close_to_exact(self, values):
        curve = lorenz_curve(values)
        # Trapezoid error is bounded by 1/n.
        assert abs(curve.gini - gini(values)) <= 1.0 / len(values) + 1e-9
