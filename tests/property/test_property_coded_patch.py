"""Property tests for sparse in-place coded-matrix epoch patching.

The invariant the whole patched-static mode rests on: along *any*
epoch history — arbitrary interleavings of leaves and joins, patches
applied and reverted in any walk order — the coded routing matrix is
restored bit-exactly whenever every applied patch has been reverted.
Absolute patches make this order-free: each patch is expressed against
the pristine matrix, so revert-outstanding-then-apply-next moves
between any two epochs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kademlia.table import (
    alive_storer_table,
    coded_arrive_patch,
    dead_value_lut,
)

N_NODES = 32
SPACE = 256


def _build_fixture():
    from repro.backends.fast import NextHopTable
    from repro.kademlia.buckets import BucketLimits
    from repro.kademlia.overlay import Overlay, OverlayConfig

    overlay = Overlay.build(OverlayConfig(
        n_nodes=N_NODES, bits=8, limits=BucketLimits.uniform(4), seed=11
    ))
    table = NextHopTable(overlay)
    return (
        overlay.address_array().astype(np.uint64),
        table.coded_transposed,
        table.storer,
    )


ADDRESSES, CODED, BASE_STORERS = _build_fixture()
PRISTINE = CODED.copy()

# Alive masks with at least one survivor (all-offline epochs never
# reach the patching layer: the engine skips them wholesale).
alive_masks = st.lists(
    st.booleans(), min_size=N_NODES, max_size=N_NODES
).map(lambda bits: np.array(bits, dtype=bool)).filter(lambda m: m.any())


def epoch_patch(alive: np.ndarray):
    storers = alive_storer_table(
        ADDRESSES, alive, BASE_STORERS.dtype, SPACE
    )
    return coded_arrive_patch(CODED, BASE_STORERS, storers), storers


class TestPatchUndoRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(alive_masks)
    def test_apply_then_revert_is_identity(self, alive):
        working = PRISTINE.copy()
        flat = working.reshape(-1)
        patch, _ = epoch_patch(alive)
        patch.apply(flat)
        patch.revert(flat)
        assert np.array_equal(working, PRISTINE)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(alive_masks, min_size=1, max_size=6))
    def test_arbitrary_epoch_history_restores_pristine(self, history):
        """Walk epochs the way EpochPlan does: revert-then-apply."""
        working = PRISTINE.copy()
        flat = working.reshape(-1)
        outstanding = None
        for alive in history:
            if outstanding is not None:
                outstanding.revert(flat)
            outstanding, _ = epoch_patch(alive)
            outstanding.apply(flat)
        if outstanding is not None:
            outstanding.revert(flat)
        assert np.array_equal(working, PRISTINE)

    @settings(max_examples=40, deadline=None)
    @given(alive_masks)
    def test_patch_is_promotion_only(self, alive):
        """Every patched entry promotes a forward value into arrive."""
        patch, storers = epoch_patch(alive)
        flat_pristine = PRISTINE.reshape(-1)
        assert np.array_equal(flat_pristine[patch.indices], patch.prior)
        # Each patched position held the row's *epoch* storer as a
        # plain forward pointer; the patch re-tags it as an arrival.
        rows = patch.indices // N_NODES
        assert np.array_equal(patch.prior, storers[rows])
        assert np.array_equal(
            patch.values, patch.prior + np.uint16(N_NODES)
        )

    @settings(max_examples=40, deadline=None)
    @given(alive_masks)
    def test_unchanged_storers_patch_nothing(self, alive):
        """Rows whose storer survives contribute no patch entries."""
        patch, storers = epoch_patch(alive)
        rows = np.unique(patch.indices // N_NODES)
        changed = np.flatnonzero(storers != BASE_STORERS)
        assert np.isin(rows, changed).all()

    @settings(max_examples=40, deadline=None)
    @given(alive_masks)
    def test_dead_value_lut_tiles_three_bands(self, alive):
        lut = dead_value_lut(alive)
        assert lut.shape == (3 * N_NODES,)
        dead = ~alive
        for band in range(3):
            assert np.array_equal(
                lut[band * N_NODES:(band + 1) * N_NODES], dead
            )
