"""Property-based tests for the DES kernel's ordering and guard
semantics (the timing bugs fixed alongside the time-domain backend).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.des import EventScheduler
from repro.errors import SimulationError

times = st.floats(min_value=0.0, max_value=1000.0,
                  allow_nan=False, allow_infinity=False)


class TestOrdering:
    @given(st.lists(times, min_size=1, max_size=60))
    def test_fifo_among_equal_timestamps(self, values):
        # Events at the same instant fire in scheduling order, no
        # matter how ties interleave with other times.
        scheduler = EventScheduler()
        fired: list[tuple[float, int]] = []
        for seq, value in enumerate(values):
            scheduler.schedule_at(
                value, lambda s, t, seq=seq: fired.append((t, seq))
            )
        scheduler.run_all()
        assert fired == sorted(fired)

    @given(st.lists(times, min_size=1, max_size=40), times)
    def test_run_until_lands_on_horizon_with_future_intact(
            self, values, horizon):
        scheduler = EventScheduler()
        for value in values:
            scheduler.schedule_at(value, lambda s, t: None)
        scheduler.run_until(horizon)
        # The clock always advances exactly to the horizon...
        assert scheduler.now == horizon
        # ...and strictly-future events survive, unfired.
        assert len(scheduler) == sum(1 for v in values if v > horizon)
        later = [v for v in values if v > horizon]
        scheduler.run_all()
        assert scheduler.now == (max(later) if later else horizon)

    @given(st.floats(min_value=0.01, max_value=5.0,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=0, max_value=20))
    def test_cancel_during_fire_stops_future_ticks(
            self, interval, kill_after):
        # A periodic handle cancelled from *inside* the event loop —
        # by an unrelated event firing between ticks — must suppress
        # every later firing, even when the cancel lands at the exact
        # timestamp of an already-queued tick (the queued closure must
        # observe the flag, not fire one last time).
        scheduler = EventScheduler()
        ticks: list[float] = []
        handle = scheduler.schedule_periodic(
            interval, lambda s, t: ticks.append(t)
        )
        kill_time = (kill_after + 1) * interval
        scheduler.schedule_at(kill_time, lambda s, t: handle.cancel())
        scheduler.schedule_at(
            kill_time + 10 * interval, lambda s, t: None
        )
        scheduler.run_all(max_events=kill_after + 30)
        # The killer shares its timestamp with tick kill_after + 1.
        # FIFO among equal timestamps decides: the very first tick was
        # queued at setup before the killer, so for kill_after == 0 it
        # still fires; every later tick is queued by its predecessor
        # (after the killer), so the cancelled flag suppresses it at
        # the shared instant — cancel-during-fire never fires a stale
        # closure.
        assert len(ticks) == max(1, kill_after)
        assert all(
            tick == (index + 1) * interval
            for index, tick in enumerate(ticks)
        )


class TestGuards:
    @given(st.integers(min_value=1, max_value=200))
    def test_max_events_is_exact(self, bound):
        # Exactly `bound` events fire before the runaway guard raises.
        scheduler = EventScheduler()
        fired: list[float] = []

        def respawn(s, t):
            fired.append(t)
            s.schedule_in(1.0, respawn)

        scheduler.schedule_in(0.0, respawn)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=bound)
        assert len(fired) == bound

    @given(st.integers(min_value=1, max_value=100))
    def test_bound_never_trips_on_exactly_bound_events(self, count):
        scheduler = EventScheduler()
        for i in range(count):
            scheduler.schedule_at(float(i), lambda s, t: None)
        assert scheduler.run_all(max_events=count) == count

    @settings(max_examples=25)
    @given(st.floats(min_value=0.01, max_value=10.0,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=500))
    def test_periodic_tick_k_is_exact_multiple(self, interval, k):
        # The drift fix: tick k fires at the float k * interval, not
        # at an accumulated sum of k additions.
        scheduler = EventScheduler()
        ticks: list[float] = []
        scheduler.schedule_periodic(
            interval, lambda s, t: ticks.append(t)
        )
        scheduler.run_until(k * interval, max_events=k + 1)
        assert ticks
        assert ticks[-1] == len(ticks) * interval
        assert all(
            tick == (index + 1) * interval
            for index, tick in enumerate(ticks)
        )
