"""Property-based tests for postage accounting (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swarm.postage import PostageBatch, PostageError, PostageOffice

chunk_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 16),
    min_size=1, max_size=60,
)


class TestBatchProperties:
    @given(chunk_lists, st.integers(min_value=6, max_value=10))
    def test_issued_counts_distinct_chunks(self, chunks, depth):
        batch = PostageBatch(1, owner=0, value=100.0, depth=depth)
        for chunk in chunks:
            batch.stamp(chunk)
        assert batch.issued == len(set(chunks))

    @given(chunk_lists)
    def test_stamps_always_verifiable(self, chunks):
        batch = PostageBatch(1, owner=0, value=100.0, depth=10)
        stamps = [batch.stamp(chunk) for chunk in chunks]
        for stamp in stamps:
            assert batch.covers(stamp)

    @given(chunk_lists,
           st.floats(min_value=0.001, max_value=10.0),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=60)
    def test_rent_conserves_value(self, chunks, rent, rounds):
        initial = 50.0
        batch = PostageBatch(1, owner=0, value=initial, depth=10)
        for chunk in chunks:
            batch.stamp(chunk)
        collected = sum(batch.charge_rent(rent) for _ in range(rounds))
        # Value is conserved: balance + collected == initial.
        assert abs(batch.balance + collected - initial) < 1e-6
        assert batch.balance >= 0

    @given(chunk_lists)
    def test_capacity_never_exceeded(self, chunks):
        depth = 4  # capacity 16
        batch = PostageBatch(1, owner=0, value=100.0, depth=depth)
        for chunk in chunks:
            try:
                batch.stamp(chunk)
            except PostageError:
                pass
        assert batch.issued <= batch.capacity


class TestOfficeProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.5, max_value=20.0),
        st.integers(min_value=2, max_value=8),
        st.lists(st.integers(min_value=0, max_value=1000),
                 min_size=1, max_size=20),
    ), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=20))
    @settings(max_examples=40)
    def test_pot_equals_total_balance_drained(self, batch_specs, rounds):
        office = PostageOffice(rent_per_chunk_round=0.1)
        initial_total = 0.0
        for value, depth, chunks in batch_specs:
            batch = office.buy_batch(owner=0, value=value, depth=depth)
            initial_total += value
            for chunk in chunks[: batch.capacity]:
                batch.stamp(chunk)
        for _ in range(rounds):
            office.collect_rent()
        remaining = sum(batch.balance for batch in office.batches())
        assert abs(office.pot + remaining - initial_total) < 1e-6

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_pay_out_never_overdraws(self, pot, request):
        office = PostageOffice()
        office.pot = pot
        paid = office.pay_out(request)
        assert paid <= pot + 1e-12
        assert office.pot >= -1e-12
