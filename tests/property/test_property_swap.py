"""Property-based tests for SWAP accounting (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.swap import SwapChannel, SwapLedger

service_events = st.lists(
    st.tuples(
        st.sampled_from([(1, 2), (2, 1)]),        # (provider, consumer)
        st.floats(min_value=0.01, max_value=100.0),
    ),
    min_size=1, max_size=40,
)


class TestChannelProperties:
    @given(service_events)
    def test_balance_is_net_of_service(self, events):
        channel = SwapChannel(low=1, high=2)
        expected = 0.0
        for (provider, _consumer), units in events:
            channel.provide(provider, units)
            expected += units if provider == 1 else -units
        assert abs(channel.balance - expected) < 1e-6

    @given(service_events)
    def test_balances_antisymmetric(self, events):
        channel = SwapChannel(low=1, high=2)
        for (provider, _consumer), units in events:
            channel.provide(provider, units)
        assert channel.balance_of(1) == -channel.balance_of(2)

    @given(service_events,
           st.floats(min_value=0.0, max_value=50.0))
    def test_amortize_never_overshoots_zero(self, events, units):
        channel = SwapChannel(low=1, high=2)
        for (provider, _consumer), amount in events:
            channel.provide(provider, amount)
        before = channel.balance
        forgiven = channel.amortize(units)
        assert 0.0 <= forgiven <= abs(before) + 1e-9
        assert abs(channel.balance) <= abs(before)
        # Sign never flips.
        assert channel.balance * before >= -1e-9


class TestLedgerConservation:
    @given(service_events)
    def test_provided_equals_consumed(self, events):
        ledger = SwapLedger()
        for (provider, consumer), units in events:
            ledger.record_service(provider, consumer, units)
        assert abs(
            sum(ledger.service_provided.values())
            - sum(ledger.service_consumed.values())
        ) < 1e-6

    @given(service_events)
    @settings(max_examples=50)
    def test_income_equals_expenditure(self, events):
        ledger = SwapLedger()
        for (provider, consumer), units in events:
            ledger.pay_direct(consumer, provider, units)
        assert abs(
            sum(ledger.income.values())
            - sum(ledger.expenditure.values())
        ) < 1e-6

    @given(service_events,
           st.floats(min_value=0.0, max_value=10.0))
    def test_amortize_all_bounded(self, events, units):
        ledger = SwapLedger()
        total_debt = 0.0
        for (provider, consumer), amount in events:
            ledger.record_service(provider, consumer, amount)
        total_debt = sum(
            abs(channel.balance) for channel in ledger.channels()
        )
        forgiven = ledger.amortize_all(units)
        assert forgiven <= total_debt + 1e-9
