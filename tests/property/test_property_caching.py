"""Property-based tests for cache policies (hypothesis).

The LRU cache is model-checked against an order-tracking reference;
both caches are checked for the basic bounded-capacity invariants
under arbitrary admit/touch sequences.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swarm.caching import LFUCache, LRUCache

operations = st.lists(
    st.tuples(st.sampled_from(["admit", "touch"]),
              st.integers(min_value=0, max_value=20)),
    min_size=1, max_size=200,
)


class LruModel:
    """Executable specification of LRU semantics."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: OrderedDict[int, None] = OrderedDict()

    def admit(self, key: int) -> None:
        if key in self.entries:
            self.entries.move_to_end(key)
            return
        if len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[key] = None

    def touch(self, key: int) -> None:
        self.entries.move_to_end(key)


class TestLRUAgainstModel:
    @given(st.integers(min_value=1, max_value=8), operations)
    @settings(max_examples=100)
    def test_matches_reference_model(self, capacity, ops):
        cache = LRUCache(capacity)
        model = LruModel(capacity)
        for op, key in ops:
            if op == "admit":
                cache.admit(key)
                model.admit(key)
            else:
                if key in model.entries:
                    cache.touch(key)
                    model.touch(key)
        assert set(model.entries) == {
            key for key in range(21) if key in cache
        }


class TestBoundedInvariants:
    @given(st.integers(min_value=1, max_value=8), operations)
    def test_lru_never_exceeds_capacity(self, capacity, ops):
        cache = LRUCache(capacity)
        for op, key in ops:
            if op == "admit":
                cache.admit(key)
            elif key in cache:
                cache.touch(key)
            assert len(cache) <= capacity

    @given(st.integers(min_value=1, max_value=8), operations)
    def test_lfu_never_exceeds_capacity(self, capacity, ops):
        cache = LFUCache(capacity)
        for op, key in ops:
            if op == "admit":
                cache.admit(key)
            elif key in cache:
                cache.touch(key)
            assert len(cache) <= capacity

    @given(operations)
    def test_admitted_key_is_present_immediately(self, ops):
        cache = LRUCache(4)
        for op, key in ops:
            if op == "admit":
                cache.admit(key)
                assert key in cache
            elif key in cache:
                cache.touch(key)
